package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// maxReportedRowErrors caps how many per-row errors a ReadReport retains,
// so a thoroughly corrupt file cannot balloon memory.
const maxReportedRowErrors = 10

// RowError records one rejected record from a tolerant read.
type RowError struct {
	// Line is the 1-based line number of the bad record.
	Line int
	// Err is the parse failure, stringified so reports serialize cleanly.
	Err string
}

// ReadReport summarizes a tolerant ingestion pass.
type ReadReport struct {
	// Accepted is the number of records parsed successfully.
	Accepted int
	// Skipped is the number of malformed records dropped.
	Skipped int
	// Errors holds the first few row errors (capped) for diagnostics.
	Errors []RowError
}

func (r *ReadReport) reject(line int, err error) {
	r.Skipped++
	if len(r.Errors) < maxReportedRowErrors {
		r.Errors = append(r.Errors, RowError{Line: line, Err: err.Error()})
	}
}

// budgetExceeded reports whether the bad-row budget is exhausted
// (maxBad < 0 means unlimited).
func budgetExceeded(skipped, maxBad int) bool {
	return maxBad >= 0 && skipped > maxBad
}

// ReadCSVTolerant parses a WriteCSV-format trace like ReadCSV, but skips
// malformed rows — wrong field counts or unparseable values — instead of
// aborting, up to a budget of maxBad rows (negative means unlimited,
// 0 means strict). It fails only on an unreadable header, an I/O error,
// or an exhausted budget. The returned report is non-nil even on error.
//
// Rows are split on commas directly rather than through encoding/csv:
// WriteCSV never quotes fields, and a line-oriented scan lets one mangled
// row (e.g. a stray quote from a truncated sacct export) be dropped
// without derailing the records after it.
func ReadCSVTolerant(r io.Reader, maxBad int) (*Trace, *ReadReport, error) {
	rep := &ReadReport{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, rep, fmt.Errorf("trace: reading CSV header: %w", err)
		}
		return nil, rep, fmt.Errorf("trace: empty CSV input")
	}
	header := strings.Split(strings.TrimRight(sc.Text(), "\r"), ",")
	if len(header) != len(csvHeader) {
		return nil, rep, fmt.Errorf("trace: CSV header has %d fields, want %d", len(header), len(csvHeader))
	}
	t := &Trace{}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r")
		if text == "" {
			continue
		}
		j, err := parseCSVRecord(strings.Split(text, ","))
		if err != nil {
			rep.reject(line, err)
			if budgetExceeded(rep.Skipped, maxBad) {
				return nil, rep, fmt.Errorf("trace: CSV line %d: %w (bad-row budget of %d exhausted)", line, err, maxBad)
			}
			continue
		}
		rep.Accepted++
		t.Jobs = append(t.Jobs, j)
	}
	if err := sc.Err(); err != nil {
		return nil, rep, fmt.Errorf("trace: reading CSV: %w", err)
	}
	return t, rep, nil
}

// ReadJSONLTolerant parses a JSONL trace like ReadJSONL, but skips lines
// that fail to decode instead of aborting, up to a budget of maxBad rows
// (negative means unlimited, 0 means strict). Blank lines are ignored and
// do not count against the budget.
func ReadJSONLTolerant(r io.Reader, maxBad int) (*Trace, *ReadReport, error) {
	rep := &ReadReport{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 4<<20)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var j Job
		if err := json.Unmarshal([]byte(text), &j); err != nil {
			rep.reject(line, err)
			if budgetExceeded(rep.Skipped, maxBad) {
				return nil, rep, fmt.Errorf("trace: JSONL line %d: %w (bad-row budget of %d exhausted)", line, err, maxBad)
			}
			continue
		}
		rep.Accepted++
		t.Jobs = append(t.Jobs, j)
	}
	if err := sc.Err(); err != nil {
		return nil, rep, fmt.Errorf("trace: reading JSONL: %w", err)
	}
	return t, rep, nil
}
