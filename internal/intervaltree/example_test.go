package intervaltree_test

import (
	"fmt"
	"sort"

	"repro/internal/intervaltree"
)

// Stab queries answer "which jobs were pending/running at instant t" — the
// primitive behind the paper's Table II feature engineering.
func ExampleTree_Stab() {
	tree := intervaltree.Build([]intervaltree.Interval{
		{Lo: 0, Hi: 100, ID: 1},  // job 1 runs [0, 100)
		{Lo: 50, Hi: 150, ID: 2}, // job 2 runs [50, 150)
		{Lo: 200, Hi: 300, ID: 3},
	})
	hits := tree.Stab(nil, 75)
	ids := make([]int, len(hits))
	for i, iv := range hits {
		ids[i] = iv.ID
	}
	sort.Ints(ids)
	fmt.Println(ids)
	// Output:
	// [1 2]
}

// BuildChunked reproduces the paper's construction: trees over 100k-job
// chunks with 10k-job overlap, merged into one (shown here at toy scale).
func ExampleBuildChunked() {
	ivs := make([]intervaltree.Interval, 25)
	for i := range ivs {
		ivs[i] = intervaltree.Interval{Lo: int64(i), Hi: int64(i + 10), ID: i}
	}
	tree := intervaltree.BuildChunked(ivs, 10, 2)
	fmt.Println(tree.Size())
	// Output:
	// 25
}
