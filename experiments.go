package trout

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/scaling"
	"repro/internal/trace"
	"repro/internal/tscv"
)

// Experiment bundles one generated trace + dataset so the per-figure
// runners share the expensive pipeline stages.
type Experiment struct {
	Pipeline PipelineConfig
	Trace    *Trace
	Cluster  *ClusterSpec
	Data     *Dataset
}

// NewExperiment generates the trace and engineers features once.
func NewExperiment(p PipelineConfig) (*Experiment, error) {
	tr, cluster, err := p.GenerateTrace()
	if err != nil {
		return nil, err
	}
	ds, err := p.BuildDataset(tr, cluster)
	if err != nil {
		return nil, err
	}
	return &Experiment{Pipeline: p, Trace: tr, Cluster: cluster, Data: ds}, nil
}

// --- T1: Table I — historic job statistics ---

// TableOne reproduces the paper's Table I over the synthetic trace.
type TableOne struct {
	Stats             trace.TableOneStats
	ShortFraction     float64 // jobs queueing < 10 min (paper: 0.87)
	SharedFraction    float64 // jobs in `shared` (paper: 0.6895)
	MeanWalltimeUsage float64 // paper: ≈ 0.15
}

// RunTableOne computes Table I.
func (e *Experiment) RunTableOne() TableOne {
	byPart := e.Trace.ByPartition()
	return TableOne{
		Stats:             e.Trace.TableOne(),
		ShortFraction:     e.Trace.ShortQueueFraction(600),
		SharedFraction:    float64(byPart["shared"]) / float64(len(e.Trace.Jobs)),
		MeanWalltimeUsage: e.Trace.MeanWalltimeUsage(),
	}
}

// Print renders the table in the paper's row layout.
func (t TableOne) Print(w io.Writer) {
	row := func(name string, s trace.Summary) {
		fmt.Fprintf(w, "%-24s %10.1f %10.2f %10.2f %10.2f %10d\n",
			name, s.Max, s.Mean, s.Median, s.StdDev, s.Count)
	}
	fmt.Fprintf(w, "%-24s %10s %10s %10s %10s %10s\n", "Variable", "Max", "Mean", "Median", "StdDev", "Count")
	row("Requested Time (hr)", t.Stats.RequestedHours)
	row("Runtime (hr)", t.Stats.RuntimeHours)
	row("Wasted Time (hr)", t.Stats.WastedHours)
	row("Jobs Submitted By User", t.Stats.JobsPerUser)
	fmt.Fprintf(w, "short-queue fraction (<10 min): %.4f  shared-partition fraction: %.4f  mean wall-time usage: %.4f\n",
		t.ShortFraction, t.SharedFraction, t.MeanWalltimeUsage)
}

// --- T2: Table II — the feature set ---

// FeatureSummary describes one engineered feature column.
type FeatureSummary struct {
	Name string
	trace.Summary
}

// RunTableTwo summarizes every Table II feature column over the dataset.
func (e *Experiment) RunTableTwo() []FeatureSummary {
	out := make([]FeatureSummary, len(e.Data.Names))
	col := make([]float64, e.Data.Len())
	for f, name := range e.Data.Names {
		for i, row := range e.Data.X {
			col[i] = row[f]
		}
		out[f] = FeatureSummary{Name: name, Summary: trace.Summarize(col)}
	}
	return out
}

// --- F2: queue-time density ---

// RunFigTwo returns the log-binned queue-time histogram (minutes).
func (e *Experiment) RunFigTwo(bins int) []metrics.HistBin {
	return metrics.LogHistogram(e.Data.QueueMinutes, bins)
}

// --- F3: time-series split diagram ---

// SplitDescription describes one CV fold's windows (Fig 3).
type SplitDescription struct {
	Fold       int
	TrainStart int
	TrainEnd   int // exclusive
	TestStart  int
	TestEnd    int // exclusive
}

// RunFigThree returns the CV fold layout for the current dataset.
func (e *Experiment) RunFigThree() ([]SplitDescription, error) {
	folds, err := tscv.Split(e.Data.Len(), e.Pipeline.Folds, e.Pipeline.TestFraction)
	if err != nil {
		return nil, err
	}
	out := make([]SplitDescription, len(folds))
	for i, f := range folds {
		out[i] = SplitDescription{
			Fold:       i + 1,
			TrainStart: f.Train[0], TrainEnd: f.Train[len(f.Train)-1] + 1,
			TestStart: f.Test[0], TestEnd: f.Test[len(f.Test)-1] + 1,
		}
	}
	return out, nil
}

// --- F4/F5: predicted-vs-actual scatter per fold ---

// ScatterResult carries the scatter series and its Pearson r (paper fold 5:
// r = 0.7532).
type ScatterResult struct {
	Fold    int
	Pearson float64
	MAPE    float64
	N       int
	Pred    []float64
	Actual  []float64
}

// RunScatter trains the hierarchical model on the given 1-based CV fold and
// returns its long-job scatter (Fig 4 is fold 4, Fig 5 is fold 5).
func (e *Experiment) RunScatter(fold int) (ScatterResult, error) {
	folds, err := tscv.Split(e.Data.Len(), e.Pipeline.Folds, e.Pipeline.TestFraction)
	if err != nil {
		return ScatterResult{}, err
	}
	if fold < 1 || fold > len(folds) {
		return ScatterResult{}, fmt.Errorf("trout: fold %d out of 1..%d", fold, len(folds))
	}
	m, err := core.Train(e.Data, folds[fold-1].Train, e.Pipeline.Model)
	if err != nil {
		return ScatterResult{}, err
	}
	ev := core.EvaluateRegression(m, e.Data, folds[fold-1].Test)
	return ScatterResult{
		Fold: fold, Pearson: ev.Pearson, MAPE: ev.MAPE, N: ev.N,
		Pred: ev.Pred, Actual: ev.Actual,
	}, nil
}

// --- F6–F9: model comparison per fold ---

// RunComparison runs the four-model comparison on one 1-based fold.
// Fig 6 / Fig 8 use fold 4; Fig 7 / Fig 9 use fold 5.
func (e *Experiment) RunComparison(fold int, cmp CompareConfig) ([]ModelScore, error) {
	return CompareFold(e.Data, e.Pipeline.Model, cmp, e.Pipeline.Folds, e.Pipeline.TestFraction, fold)
}

// --- R1: classifier accuracy ---

// ClassifierResult is the §IV classifier evaluation (paper: 90.48 % with
// similar per-class accuracy on the most recent jobs).
type ClassifierResult struct {
	Accuracy         float64
	BalancedAccuracy float64
	Precision        float64
	Recall           float64
	F1               float64
	AUC              float64
	N                int
}

// RunClassifier trains on all but the most recent 20 % and scores the
// quick-start/long classifier on that holdout.
func (e *Experiment) RunClassifier() (ClassifierResult, error) {
	m, fold, err := TrainHoldout(e.Data, e.Pipeline.Model, 0.2)
	if err != nil {
		return ClassifierResult{}, err
	}
	ev := core.EvaluateClassifier(m, e.Data, fold.Test)
	return ClassifierResult{
		Accuracy:         ev.Accuracy(),
		BalancedAccuracy: ev.BalancedAccuracy(),
		Precision:        ev.Precision(),
		Recall:           ev.Recall(),
		F1:               ev.F1(),
		AUC:              ev.AUC,
		N:                ev.N,
	}, nil
}

// --- R2: regression MAPE over the last three folds ---

// RunRegressionFolds returns per-fold regression metrics; the paper reports
// the mean MAPE of the final three (69.99, 90.87, 131.18 → 97.57 %).
func (e *Experiment) RunRegressionFolds() ([]FoldMetrics, float64, error) {
	fm, err := CrossValidate(e.Data, e.Pipeline.Model, e.Pipeline.Folds, e.Pipeline.TestFraction)
	if err != nil {
		return nil, 0, err
	}
	lastThree := fm
	if len(fm) > 3 {
		lastThree = fm[len(fm)-3:]
	}
	var mean float64
	for _, f := range lastThree {
		mean += f.MAPE
	}
	mean /= float64(len(lastThree))
	return fm, mean, nil
}

// --- A1: cutoff ablation (5 vs 10 vs 30 minutes) ---

// CutoffResult is one cutoff's regression performance on the final fold.
type CutoffResult struct {
	CutoffMinutes float64
	MAPE          float64
	N             int
	ClassifierBA  float64
}

// RunCutoffAblation re-trains at each cutoff (paper §III: 5 min roughly
// doubles regression MAPE; 30 min is marginal).
func (e *Experiment) RunCutoffAblation(cutoffs []float64) ([]CutoffResult, error) {
	fold, err := tscv.HoldoutRecent(e.Data.Len(), 0.2)
	if err != nil {
		return nil, err
	}
	out := make([]CutoffResult, 0, len(cutoffs))
	for _, c := range cutoffs {
		cfg := e.Pipeline.Model
		cfg.CutoffMinutes = c
		m, err := core.Train(e.Data, fold.Train, cfg)
		if err != nil {
			return nil, fmt.Errorf("trout: cutoff %v: %w", c, err)
		}
		reg := core.EvaluateRegression(m, e.Data, fold.Test)
		cls := core.EvaluateClassifier(m, e.Data, fold.Test)
		out = append(out, CutoffResult{
			CutoffMinutes: c, MAPE: reg.MAPE, N: reg.N,
			ClassifierBA: cls.BalancedAccuracy(),
		})
	}
	return out, nil
}

// --- A2: shuffled-split leakage ---

// LeakageResult contrasts time-ordered and shuffled splits (§III: shuffling
// roughly doubled apparent performance through burst leakage).
type LeakageResult struct {
	TimeMAPE     float64
	ShuffledMAPE float64
	// Ratio > 1 means the shuffled split looks better than it should.
	Ratio float64
}

// RunLeakageAblation trains the regressor under both splits.
func (e *Experiment) RunLeakageAblation() (LeakageResult, error) {
	timeFold, err := tscv.HoldoutRecent(e.Data.Len(), 0.2)
	if err != nil {
		return LeakageResult{}, err
	}
	shufFold, err := tscv.ShuffledSplit(e.Data.Len(), 0.2, e.Pipeline.Seed+77)
	if err != nil {
		return LeakageResult{}, err
	}
	evalFold := func(f tscv.Fold) (float64, error) {
		m, err := core.Train(e.Data, f.Train, e.Pipeline.Model)
		if err != nil {
			return 0, err
		}
		return core.EvaluateRegression(m, e.Data, f.Test).MAPE, nil
	}
	tm, err := evalFold(timeFold)
	if err != nil {
		return LeakageResult{}, err
	}
	sm, err := evalFold(shufFold)
	if err != nil {
		return LeakageResult{}, err
	}
	return LeakageResult{TimeMAPE: tm, ShuffledMAPE: sm, Ratio: tm / sm}, nil
}

// --- A3: SMOTE ablation ---

// SMOTEResult contrasts classifier quality with and without balancing.
type SMOTEResult struct {
	WithSMOTE    ClassifierResult
	WithoutSMOTE ClassifierResult
}

// RunSMOTEAblation trains the classifier with and without SMOTE.
func (e *Experiment) RunSMOTEAblation() (SMOTEResult, error) {
	run := func(use bool) (ClassifierResult, error) {
		cfg := e.Pipeline.Model
		cfg.UseSMOTE = use
		m, fold, err := TrainHoldout(e.Data, cfg, 0.2)
		if err != nil {
			return ClassifierResult{}, err
		}
		ev := core.EvaluateClassifier(m, e.Data, fold.Test)
		return ClassifierResult{
			Accuracy: ev.Accuracy(), BalancedAccuracy: ev.BalancedAccuracy(),
			Precision: ev.Precision(), Recall: ev.Recall(), F1: ev.F1(), N: ev.N,
		}, nil
	}
	with, err := run(true)
	if err != nil {
		return SMOTEResult{}, err
	}
	without, err := run(false)
	if err != nil {
		return SMOTEResult{}, err
	}
	return SMOTEResult{WithSMOTE: with, WithoutSMOTE: without}, nil
}

// --- A4: activation / batch-norm ablation ---

// VariantResult is one regressor variant's holdout performance.
type VariantResult struct {
	Name string
	MAPE float64
	N    int
}

// RunActivationAblation compares ELU (paper's choice), ReLU, Tanh and
// ELU+BatchNorm regressors on the holdout.
func (e *Experiment) RunActivationAblation() ([]VariantResult, error) {
	fold, err := tscv.HoldoutRecent(e.Data.Len(), 0.2)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		act  nn.ActivationKind
		bn   bool
	}{
		{"ELU", nn.ELU, false},
		{"ReLU", nn.ReLU, false},
		{"Tanh", nn.Tanh, false},
		{"ELU+BatchNorm", nn.ELU, true},
	}
	out := make([]VariantResult, 0, len(variants))
	for _, v := range variants {
		cfg := e.Pipeline.Model
		cfg.Regressor.Activation = v.act
		cfg.Regressor.BatchNorm = v.bn
		m, err := core.Train(e.Data, fold.Train, cfg)
		if err != nil {
			return nil, fmt.Errorf("trout: variant %s: %w", v.name, err)
		}
		ev := core.EvaluateRegression(m, e.Data, fold.Test)
		out = append(out, VariantResult{Name: v.name, MAPE: ev.MAPE, N: ev.N})
	}
	return out, nil
}

// RunScalingAblation compares the log transform against the scalers the
// paper tested and rejected (min-max, Box-Cox) plus standardization and no
// scaling.
func (e *Experiment) RunScalingAblation() ([]VariantResult, error) {
	fold, err := tscv.HoldoutRecent(e.Data.Len(), 0.2)
	if err != nil {
		return nil, err
	}
	out := make([]VariantResult, 0, len(scaling.Kinds()))
	for _, k := range scaling.Kinds() {
		cfg := e.Pipeline.Model
		cfg.Scaler = k
		m, err := core.Train(e.Data, fold.Train, cfg)
		if err != nil {
			return nil, fmt.Errorf("trout: scaler %s: %w", k, err)
		}
		ev := core.EvaluateRegression(m, e.Data, fold.Test)
		out = append(out, VariantResult{Name: string(k), MAPE: ev.MAPE, N: ev.N})
	}
	return out, nil
}

// --- Feature importance (the paper's SHAP-style analysis) ---

// RunFeatureImportance ranks features by permutation importance of the
// trained regression head on the holdout's long jobs.
func (e *Experiment) RunFeatureImportance(maxRows int) ([]ImportanceRow, error) {
	m, fold, err := TrainHoldout(e.Data, e.Pipeline.Model, 0.2)
	if err != nil {
		return nil, err
	}
	var X [][]float64
	var y []float64
	for _, i := range fold.Test {
		if e.Data.QueueMinutes[i] >= m.Cfg.CutoffMinutes {
			X = append(X, e.Data.X[i])
			y = append(y, math.Log1p(e.Data.QueueMinutes[i]))
		}
	}
	if maxRows > 0 && len(X) > maxRows {
		X, y = X[:maxRows], y[:maxRows]
	}
	predict := func(row []float64) float64 {
		return math.Log1p(m.RegressMinutes(row))
	}
	imps := importanceOf(predict, X, y)
	sort.Slice(imps, func(a, b int) bool { return imps[a].Score > imps[b].Score })
	return imps, nil
}

// ImportanceRow is one feature's permutation-importance score.
type ImportanceRow struct {
	Feature string
	Score   float64
}

func importanceOf(predict func([]float64) float64, X [][]float64, y []float64) []ImportanceRow {
	raw := permImportance(predict, X, y)
	out := make([]ImportanceRow, len(raw))
	for i, r := range raw {
		out[i] = ImportanceRow{Feature: r.Feature, Score: r.Score}
	}
	return out
}
