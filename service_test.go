package trout_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	trout "repro"
)

// testService spins up the dashboard service over the shared experiment's
// trace and the memoized resilientBundle — training once for the whole
// suite; every test still gets its own Service (state and counters are
// per-Service, and tests that poison the bundle copy it first).
func testService(t *testing.T) (*httptest.Server, *trout.Experiment) {
	t.Helper()
	e := sharedExperiment(t)
	svc, err := trout.NewService(resilientBundle(t), e.Trace)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return srv, e
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestServiceHealth(t *testing.T) {
	srv, e := testService(t)
	var h struct {
		Status        string  `json:"status"`
		CutoffMinutes float64 `json:"cutoff_minutes"`
		NumFeatures   int     `json:"num_features"`
		QueueJobs     int     `json:"queue_jobs"`
	}
	if code := getJSON(t, srv.URL+"/health", &h); code != 200 {
		t.Fatalf("health status %d", code)
	}
	if h.Status != "ok" || h.CutoffMinutes != 10 || h.NumFeatures != len(trout.FeatureNames) {
		t.Fatalf("health = %+v", h)
	}
	if h.QueueJobs != len(e.Trace.Jobs) {
		t.Fatalf("queue jobs %d", h.QueueJobs)
	}
}

func TestServicePredictExistingJob(t *testing.T) {
	srv, e := testService(t)
	jobID := e.Trace.Jobs[len(e.Trace.Jobs)/2].ID
	var p struct {
		Prob    float64 `json:"prob"`
		Message string  `json:"message"`
	}
	if code := getJSON(t, fmt.Sprintf("%s/predict?job=%d", srv.URL, jobID), &p); code != 200 {
		t.Fatalf("predict status %d", code)
	}
	if p.Prob < 0 || p.Prob > 1 {
		t.Fatalf("prob %v", p.Prob)
	}
	if !strings.Contains(p.Message, "Predicted") {
		t.Fatalf("message %q", p.Message)
	}
}

func TestServicePredictHypothetical(t *testing.T) {
	srv, e := testService(t)
	at := e.Trace.Jobs[len(e.Trace.Jobs)/2].Eligible
	body := fmt.Sprintf(`{"at":%d,"job":{"user":3,"partition":"shared","req_cpus":16,"req_mem_gb":32,"req_nodes":1,"time_limit":14400,"priority":5000}}`, at)
	resp, err := http.Post(srv.URL+"/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("hypothetical predict status %d", resp.StatusCode)
	}
	var p struct {
		Message string `json:"message"`
		Running int    `json:"running_in_snapshot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Message == "" {
		t.Fatal("empty message")
	}
}

func TestServicePredictErrors(t *testing.T) {
	srv, _ := testService(t)
	var x struct{}
	if code := getJSON(t, srv.URL+"/predict?job=notanumber", &x); code != http.StatusBadRequest {
		t.Fatalf("bad job id gave %d", code)
	}
	if code := getJSON(t, srv.URL+"/predict?job=99999999", &x); code != http.StatusNotFound {
		t.Fatalf("missing job gave %d", code)
	}
	resp, err := http.Post(srv.URL+"/predict", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body gave %d", resp.StatusCode)
	}
	// Missing `at`.
	resp, err = http.Post(srv.URL+"/predict", "application/json", strings.NewReader(`{"job":{"partition":"shared"}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing at gave %d", resp.StatusCode)
	}
}

func TestServiceStateUpdate(t *testing.T) {
	srv, e := testService(t)
	// Replace the state with a 100-job slice encoded as JSONL.
	sub := &trout.Trace{Jobs: e.Trace.Jobs[:100]}
	var buf bytes.Buffer
	if err := sub.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/state", "application/jsonl", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("state update status %d", resp.StatusCode)
	}
	var h struct {
		QueueJobs int `json:"queue_jobs"`
	}
	getJSON(t, srv.URL+"/health", &h)
	if h.QueueJobs != 100 {
		t.Fatalf("queue jobs after update %d", h.QueueJobs)
	}
}

func TestServiceFeaturesEndpoint(t *testing.T) {
	srv, e := testService(t)
	jobID := e.Trace.Jobs[10].ID
	var feats map[string]float64
	if code := getJSON(t, fmt.Sprintf("%s/features?job=%d", srv.URL, jobID), &feats); code != 200 {
		t.Fatalf("features status %d", code)
	}
	if len(feats) != len(trout.FeatureNames) {
		t.Fatalf("%d features", len(feats))
	}
	if _, ok := feats["Priority"]; !ok {
		t.Fatal("missing Priority feature")
	}
}

func TestServiceMethodGuards(t *testing.T) {
	srv, _ := testService(t)
	resp, err := http.Post(srv.URL+"/health", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /health gave %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/state")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /state gave %d", resp.StatusCode)
	}
}

// TestServiceConcurrentAccess hammers predictions and state swaps together;
// run under -race this validates the service's locking.
func TestServiceConcurrentAccess(t *testing.T) {
	srv, e := testService(t)
	jobID := e.Trace.Jobs[len(e.Trace.Jobs)/3].ID
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Get(fmt.Sprintf("%s/predict?job=%d", srv.URL, jobID))
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			sub := &trout.Trace{Jobs: e.Trace.Jobs}
			var buf bytes.Buffer
			if err := sub.WriteJSONL(&buf); err != nil {
				return
			}
			resp, err := http.Post(srv.URL+"/state", "application/jsonl", &buf)
			if err == nil {
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()
}

func TestNewServiceValidation(t *testing.T) {
	if _, err := trout.NewService(nil, nil); err == nil {
		t.Fatal("nil bundle accepted")
	}
}
