package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Policy shapes a Retry loop: exponential backoff with full jitter,
// bounded by attempt count and total elapsed time. The zero value is a
// production-safe default (100ms → 10s, doubling, full jitter, no caps).
type Policy struct {
	// InitialInterval is the first backoff ceiling. 0 means 100ms.
	InitialInterval time.Duration
	// MaxInterval caps the backoff ceiling. 0 means 10s.
	MaxInterval time.Duration
	// Multiplier grows the ceiling each attempt. 0 means 2.
	Multiplier float64
	// Jitter in [0,1] is the fraction of each sleep drawn uniformly at
	// random ("full jitter" at 1, deterministic at 0): the actual sleep is
	// ceiling*(1-Jitter) + rand*ceiling*Jitter. Negative means 1 (full
	// jitter, the AWS-recommended default for thundering-herd avoidance);
	// 0 keeps the raw exponential schedule.
	Jitter float64
	// MaxAttempts stops after this many calls of fn. 0 means unlimited.
	MaxAttempts int
	// MaxElapsed stops retrying once the total time since the first
	// attempt passes this. 0 means unlimited.
	MaxElapsed time.Duration
	// OnRetry, when set, observes every failed attempt before its backoff
	// sleep — the metrics/logging hook.
	OnRetry func(attempt int, err error, sleep time.Duration)
	// Rand replaces the jitter source (tests). Nil uses a seeded
	// process-global source.
	Rand func() float64
}

func (p Policy) withDefaults() Policy {
	if p.InitialInterval == 0 {
		p.InitialInterval = 100 * time.Millisecond
	}
	if p.MaxInterval == 0 {
		p.MaxInterval = 10 * time.Second
	}
	if p.Multiplier == 0 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 1
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.Rand == nil {
		p.Rand = globalFloat64
	}
	return p
}

var (
	globalRandMu sync.Mutex
	globalRand   = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func globalFloat64() float64 {
	globalRandMu.Lock()
	defer globalRandMu.Unlock()
	return globalRand.Float64()
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Retry stops immediately and returns it: the
// failure is structural (bad request, corrupt state), not transient.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) came from
// Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Sleep computes the attempt-th backoff sleep (attempt counts from 1) for
// deterministic policy math in tests and capacity planning: the jittered
// ceiling min(InitialInterval*Multiplier^(attempt-1), MaxInterval).
func (p Policy) Sleep(attempt int) time.Duration {
	p = p.withDefaults()
	return p.sleep(attempt)
}

func (p Policy) sleep(attempt int) time.Duration {
	ceiling := float64(p.InitialInterval)
	for i := 1; i < attempt; i++ {
		ceiling *= p.Multiplier
		if ceiling >= float64(p.MaxInterval) {
			ceiling = float64(p.MaxInterval)
			break
		}
	}
	if ceiling > float64(p.MaxInterval) {
		ceiling = float64(p.MaxInterval)
	}
	d := ceiling*(1-p.Jitter) + p.Rand()*ceiling*p.Jitter
	return time.Duration(d)
}

// Retry runs fn until it succeeds, a cap is hit, the error is Permanent,
// or ctx is canceled (including mid-sleep). The context is passed through
// to fn; the returned error is fn's last error (wrapped with the attempt
// count when the caps end the loop) or ctx.Err() on cancellation.
func Retry(ctx context.Context, p Policy, fn func(ctx context.Context) error) error {
	p = p.withDefaults()
	start := time.Now()
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := fn(ctx)
		if err == nil {
			return nil
		}
		if IsPermanent(err) {
			return err
		}
		if p.MaxAttempts > 0 && attempt >= p.MaxAttempts {
			return fmt.Errorf("resilience: giving up after %d attempts: %w", attempt, err)
		}
		sleep := p.sleep(attempt)
		if p.MaxElapsed > 0 && time.Since(start)+sleep > p.MaxElapsed {
			return fmt.Errorf("resilience: giving up after %s elapsed (%d attempts): %w",
				time.Since(start).Round(time.Millisecond), attempt, err)
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err, sleep)
		}
		if timer == nil {
			timer = time.NewTimer(sleep)
		} else {
			timer.Reset(sleep)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
		}
	}
}
