//go:build race

package nn

// raceEnabled reports whether the race detector is active; its
// instrumentation adds allocations, so alloc-count guards skip themselves.
const raceEnabled = true
