package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// paper-shaped test nets: the classifier and regressor stacks from the
// default TROUT architecture, plus a kitchen-sink net covering every
// compilable layer kind.
func f32TestNets(rng *rand.Rand) map[string]*Network {
	return map[string]*Network{
		"classifier": NewNetwork(rng, MLPSpecs(33, []int{64, 32}, 1, ReLU, Sigmoid, 0.2)...),
		"regressor":  NewNetwork(rng, MLPSpecs(33, []int{128, 64, 32}, 1, ELU, Identity, 0.2)...),
		"kitchen": NewNetwork(rng,
			DenseSpec(10, 16), BatchNormSpec(16), ActivationSpec(Tanh),
			DenseSpec(16, 8), ActivationSpec(LeakyReLU),
			DenseSpec(8, 4), ActivationSpec(Sigmoid)),
	}
}

// ord32 maps float32 bits onto a monotone integer scale so that adjacent
// representable floats differ by exactly one.
func ord32(f float32) int64 {
	u := math.Float32bits(f)
	if u&0x80000000 != 0 {
		return -int64(u & 0x7fffffff)
	}
	return int64(u)
}

// ulps32 returns the distance in float32 representation steps between the
// float32 result and the float64 reference rounded to float32.
func ulps32(ref, got float64) int {
	d := ord32(float32(ref)) - ord32(float32(got))
	if d < 0 {
		d = -d
	}
	return int(d)
}

// TestFloat32MatchesFloat64 pins the f32-vs-f64 tolerance on randomized
// weights and inputs across the paper architectures: every output unit
// must land within 256 float32 ulps of the f64 reference, or within 1e-5
// absolute where the output crosses zero and ulp spacing collapses. The
// observed worst case is far tighter (single-digit ulps on the sigmoid
// head, ~2e-7 absolute on the regression head; see DESIGN.md §12).
func TestFloat32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for name, n := range f32TestNets(rng) {
		inW := n.Layers[0].(*Dense).In
		in := tensor.New(8, inW)
		for i := range in.Data {
			in.Data[i] = rng.NormFloat64() * 3
		}
		ref := n.Predict(in)
		if !n.EnableFloat32() {
			t.Fatalf("%s: EnableFloat32 failed", name)
		}
		got := n.Predict(in)
		maxUlp, maxAbs := 0, 0.0
		for i := range ref.Data {
			u := ulps32(ref.Data[i], got.Data[i])
			abs := math.Abs(ref.Data[i] - got.Data[i])
			if u > maxUlp {
				maxUlp = u
			}
			if abs > maxAbs {
				maxAbs = abs
			}
			if u > 256 && abs > 1e-5 {
				t.Fatalf("%s: output %d: f64=%v f32=%v (%d ulps, %g abs)", name, i, ref.Data[i], got.Data[i], u, abs)
			}
		}
		t.Logf("%s: max deviation %d float32 ulps, %.3g absolute", name, maxUlp, maxAbs)
		n.DisableFloat32()
		back := n.Predict(in)
		for i := range ref.Data {
			if back.Data[i] != ref.Data[i] {
				t.Fatalf("%s: DisableFloat32 did not restore the f64 path", name)
			}
		}
	}
}

// TestFloat32BatchMatchesSingle pins the kernel accumulation-order
// contract: a row predicted in a batch and the same row through Predict1
// produce bit-identical float32-path results.
func TestFloat32BatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := NewNetwork(rng, MLPSpecs(33, []int{64, 32}, 1, ReLU, Sigmoid, 0)...)
	if !n.EnableFloat32() {
		t.Fatal("EnableFloat32 failed")
	}
	in := tensor.New(13, 33) // odd row count
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	batch := n.Predict(in)
	for r := 0; r < in.Rows; r++ {
		single := n.Predict1(in.Row(r))
		if math.Float64bits(single) != math.Float64bits(batch.Data[r]) {
			t.Fatalf("row %d: single %v batch %v", r, single, batch.Data[r])
		}
	}
}

// TestFloat32NaNPropagates: a poisoned feature must surface as NaN from
// the float32 path (the serving fallback keys off non-finite outputs).
func TestFloat32NaNPropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for name, n := range f32TestNets(rng) {
		if !n.EnableFloat32() {
			t.Fatalf("%s: EnableFloat32 failed", name)
		}
		inW := n.Layers[0].(*Dense).In
		x := make([]float64, inW)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		if v := n.Predict1(x); math.IsNaN(v) {
			t.Fatalf("%s: clean input returned NaN", name)
		}
		x[inW/2] = math.NaN()
		if v := n.Predict1(x); !math.IsNaN(v) {
			t.Fatalf("%s: poisoned input returned %v, want NaN", name, v)
		}
	}
}

// TestFloat32TrainingInvalidates: a training pass must drop the compiled
// snapshot so stale f32 weights can never serve.
func TestFloat32TrainingInvalidates(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := NewNetwork(rng, MLPSpecs(4, []int{8}, 1, ReLU, Sigmoid, 0)...)
	if !n.EnableFloat32() {
		t.Fatal("EnableFloat32 failed")
	}
	tws := n.NewTrainWorkspace()
	in := tensor.New(2, 4)
	n.ForwardTrain(tws, in)
	if n.Float32Enabled() {
		t.Fatal("ForwardTrain left the f32 program active")
	}
	if !n.EnableFloat32() {
		t.Fatal("re-enable failed")
	}
	n.Forward(in, true)
	if n.Float32Enabled() {
		t.Fatal("Forward(train) left the f32 program active")
	}
}

// TestFloat32PredictNoAllocs guards the steady-state allocation profile of
// the float32 path: Predict1 must be allocation-free once the workspace
// pool is warm.
func TestFloat32PredictNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	rng := rand.New(rand.NewSource(9))
	n := NewNetwork(rng, MLPSpecs(33, []int{64, 32}, 1, ReLU, Sigmoid, 0)...)
	if !n.EnableFloat32() {
		t.Fatal("EnableFloat32 failed")
	}
	x := make([]float64, 33)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	n.Predict1(x) // warm the pool
	allocs := testing.AllocsPerRun(200, func() { n.Predict1(x) })
	if allocs != 0 {
		t.Fatalf("Predict1 (f32): %v allocs/op, want 0", allocs)
	}
}

// TestFloat32GobRoundTrip: loading a saved network yields a plain f64 net;
// enabling f32 on the loaded copy matches the original's f32 predictions
// bit for bit (same weights, same compiled program).
func TestFloat32GobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := NewNetwork(rng, MLPSpecs(33, []int{64, 32}, 1, ReLU, Sigmoid, 0)...)
	blob, err := n.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromBytes(blob)
	if err != nil {
		t.Fatal(err)
	}
	if m.Float32Enabled() {
		t.Fatal("loaded network unexpectedly has an f32 program")
	}
	n.EnableFloat32()
	m.EnableFloat32()
	x := make([]float64, 33)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	if a, b := n.Predict1(x), m.Predict1(x); math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("f32 predictions diverge after gob round-trip: %v vs %v", a, b)
	}
}
