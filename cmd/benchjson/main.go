// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark results can be committed (BENCH_*.json) and
// diffed across runs without scraping free-form text.
//
//	go test -run '^$' -bench Predict -benchmem . > bench.txt
//	benchjson -o BENCH_inference.json bench.txt
//
// Reads the named files (or stdin when none are given), keeps every
// benchmark result line plus the goos/goarch/pkg/cpu context, and writes:
//
//	{
//	  "context": {"goos": "linux", "cpu": "...", ...},
//	  "benchmarks": [
//	    {"name": "PredictBatch64", "procs": 8, "iterations": 100,
//	     "ns_per_op": 194669, "metrics": {"B/op": 3962, "allocs/op": 3}}
//	  ]
//	}
//
// Repeated -count runs of one benchmark produce repeated entries; averaging
// is left to the consumer (benchstat remains the tool for significance).
//
// -check flips the tool into regression-gate mode: instead of emitting
// JSON, it compares fresh `go test -bench` output against a committed
// baseline document and exits nonzero when any shared benchmark slowed
// down by more than -tolerance (default 2x — wide enough for machine
// noise, tight enough to catch a lost optimization):
//
//	go test -run '^$' -bench FooFit -benchtime 1x ./... > fresh.txt
//	benchjson -check BENCH_train.json fresh.txt
//
// Benchmarks present on only one side are reported but never fail the
// gate (new benchmarks land before their baseline is refreshed). A
// comparison is skipped as too noisy only when either side's total
// sample time — iterations × ns/op — is below -min-sample-ns (default
// 100µs). The old rule skipped on absolute ns/op, which permanently
// exempted every fast benchmark from the gate no matter how long it had
// actually measured; a 1µs op timed over 10k iterations is a 10ms
// sample and gates fine, while a single 50µs shot is still noise.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

type result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type document struct {
	GeneratedUnix int64             `json:"generated_unix"`
	Context       map[string]string `json:"context,omitempty"`
	Benchmarks    []result          `json:"benchmarks"`
	Failed        bool              `json:"failed,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "output file (default stdout)")
	check := flag.String("check", "", "baseline JSON to compare against (regression-gate mode)")
	tolerance := flag.Float64("tolerance", 2.0, "with -check: maximum allowed fresh/baseline ns ratio")
	minSampleNs := flag.Float64("min-sample-ns", 100_000, "with -check: skip comparisons where either side's iterations*ns_per_op sample is shorter than this (too noisy)")
	flag.Parse()

	doc := document{
		GeneratedUnix: time.Now().Unix(),
		Context:       map[string]string{},
		Benchmarks:    []result{},
	}
	if flag.NArg() == 0 {
		parse(os.Stdin, &doc)
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		parse(f, &doc)
		f.Close()
	}

	if len(doc.Benchmarks) == 0 {
		log.Fatal("no benchmark result lines found in input")
	}
	if doc.Failed {
		log.Fatal("input contains a FAIL line")
	}

	if *check != "" {
		blob, err := os.ReadFile(*check)
		if err != nil {
			log.Fatal(err)
		}
		var base document
		if err := json.Unmarshal(blob, &base); err != nil {
			log.Fatalf("%s: %v", *check, err)
		}
		report := compareBenchmarks(base.Benchmarks, doc.Benchmarks, *tolerance, *minSampleNs)
		for _, line := range report.lines {
			fmt.Println(line)
		}
		if len(report.regressions) > 0 {
			log.Fatalf("%d benchmark(s) regressed past %.1fx vs %s", len(report.regressions), *tolerance, *check)
		}
		return
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
}

// checkReport is compareBenchmarks' outcome: one printable line per
// benchmark, plus the names that regressed past the tolerance.
type checkReport struct {
	lines       []string
	regressions []string
}

// sampleNs is the total measured time behind one result line:
// iterations × ns/op. It is the quantity that decides whether a
// comparison is statistically worth gating — a fast op timed over many
// iterations carries as much signal as one long shot. Lines that predate
// the iterations field count as a single iteration.
func sampleNs(r result) float64 {
	iters := r.Iterations
	if iters < 1 {
		iters = 1
	}
	return float64(iters) * r.NsPerOp
}

// compareBenchmarks gates fresh results against a committed baseline.
// Repeated entries (from -count runs) collapse to the per-name minimum
// ns/op — the cleanest estimate either side has — and only names present
// in both documents can fail the gate.
func compareBenchmarks(base, fresh []result, tolerance, minSampleNs float64) checkReport {
	bestOf := func(rs []result) map[string]result {
		best := map[string]result{}
		for _, r := range rs {
			if r.NsPerOp <= 0 {
				continue
			}
			if v, ok := best[r.Name]; !ok || r.NsPerOp < v.NsPerOp {
				best[r.Name] = r
			}
		}
		return best
	}
	baseBest, freshBest := bestOf(base), bestOf(fresh)

	names := make([]string, 0, len(freshBest))
	for name := range freshBest {
		names = append(names, name)
	}
	sort.Strings(names)

	var rep checkReport
	for _, name := range names {
		fr := freshBest[name]
		bs, ok := baseBest[name]
		if !ok {
			rep.lines = append(rep.lines, fmt.Sprintf("  new   %-40s %12.0f ns/op (no baseline)", name, fr.NsPerOp))
			continue
		}
		ratio := fr.NsPerOp / bs.NsPerOp
		switch {
		case sampleNs(bs) < minSampleNs || sampleNs(fr) < minSampleNs:
			rep.lines = append(rep.lines, fmt.Sprintf("  skip  %-40s sample %.0f ns (base) / %.0f ns (fresh) below %.0f ns floor",
				name, sampleNs(bs), sampleNs(fr), minSampleNs))
		case ratio > tolerance:
			rep.lines = append(rep.lines, fmt.Sprintf("  FAIL  %-40s %12.0f ns/op vs baseline %.0f (%.2fx)", name, fr.NsPerOp, bs.NsPerOp, ratio))
			rep.regressions = append(rep.regressions, name)
		default:
			rep.lines = append(rep.lines, fmt.Sprintf("  ok    %-40s %12.0f ns/op vs baseline %.0f (%.2fx)", name, fr.NsPerOp, bs.NsPerOp, ratio))
		}
	}
	for name := range baseBest {
		if _, ok := freshBest[name]; !ok {
			rep.lines = append(rep.lines, fmt.Sprintf("  gone  %-40s in baseline but not in fresh run", name))
		}
	}
	return rep
}

func parse(r io.Reader, doc *document) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			doc.Context[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseBench(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, res)
			}
		case strings.HasPrefix(line, "FAIL"), strings.HasPrefix(line, "--- FAIL"):
			doc.Failed = true
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

// parseBench decodes one result line:
//
//	BenchmarkName/sub=1-8   100   194669 ns/op   3962 B/op   3 allocs/op
//
// The trailing -N on the name is GOMAXPROCS; every remaining "<value>
// <unit>" pair (including ReportMetric customs) lands in Metrics, with
// ns/op pulled out as the primary measurement.
func parseBench(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	res := result{
		Name:    strings.TrimPrefix(fields[0], "Benchmark"),
		Procs:   1,
		Metrics: map[string]float64{},
	}
	if i := strings.LastIndex(res.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Name, res.Procs = res.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	res.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		if fields[i+1] == "ns/op" {
			res.NsPerOp = v
			continue
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}

// usage string for -h.
func init() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchjson [-o out.json] [bench.txt ...]\nreads `go test -bench` output (stdin when no files) and emits JSON\n")
		flag.PrintDefaults()
	}
}
