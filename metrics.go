package trout

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"repro/internal/resilience"
)

// handleMetrics renders the service's counters in Prometheus text
// exposition format 0.0.4. Metric naming follows the
// prometheus-slurm-exporter convention (queue gauges labelled by
// partition); output is deterministically ordered so scrapes diff
// cleanly.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		resilience.WriteError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	var b strings.Builder

	// Prediction fallback tiers.
	writeMetricHeader(&b, "trout_predictions_total", "counter",
		"Predictions answered, by fallback tier.")
	writeLabelledCounters(&b, "trout_predictions_total", "tier", s.tiers.Snapshot())

	// Snapshot source split: indexed live engine vs legacy trace scan.
	writeMetricHeader(&b, "trout_snapshot_source_total", "counter",
		"Queue snapshots produced, by source (live engine vs trace scan).")
	writeLabelledCounters(&b, "trout_snapshot_source_total", "source", s.sources.Snapshot())

	// Batch prediction shape: jobs per POST /predict/batch request.
	bs := s.batch.Snapshot()
	writeMetricHeader(&b, "trout_predict_batch_size", "histogram",
		"Jobs per POST /predict/batch request.")
	for i, ub := range bs.Buckets {
		fmt.Fprintf(&b, "trout_predict_batch_size_bucket{le=\"%g\"} %d\n", ub, bs.CumCounts[i])
	}
	fmt.Fprintf(&b, "trout_predict_batch_size_bucket{le=\"+Inf\"} %d\n", bs.Count)
	fmt.Fprintf(&b, "trout_predict_batch_size_sum %g\n", bs.Sum)
	fmt.Fprintf(&b, "trout_predict_batch_size_count %d\n", bs.Count)

	// HTTP request counters and latency histogram.
	hs := s.httpStats.Snapshot()
	writeMetricHeader(&b, "trout_http_requests_total", "counter",
		"HTTP requests completed, by path and status code.")
	paths := make([]string, 0, len(hs.Requests))
	for p := range hs.Requests {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		codes := make([]int, 0, len(hs.Requests[p]))
		for c := range hs.Requests[p] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(&b, "trout_http_requests_total{path=%q,code=\"%d\"} %d\n",
				p, c, hs.Requests[p][c])
		}
	}
	writeMetricHeader(&b, "trout_http_request_duration_seconds", "histogram",
		"HTTP request latency.")
	for i, ub := range hs.Buckets {
		fmt.Fprintf(&b, "trout_http_request_duration_seconds_bucket{le=\"%g\"} %d\n",
			ub, hs.CumCounts[i])
	}
	fmt.Fprintf(&b, "trout_http_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", hs.Count)
	fmt.Fprintf(&b, "trout_http_request_duration_seconds_sum %g\n", hs.Sum)
	fmt.Fprintf(&b, "trout_http_request_duration_seconds_count %d\n", hs.Count)

	// Live-state engine gauges and event counters.
	st := s.live.Engine().Stats()
	writeMetricHeader(&b, "trout_livestate_events_total", "counter",
		"Events applied to the live-state engine, by type.")
	writeLabelledCounters(&b, "trout_livestate_events_total", "type", st.Events)
	writeMetricHeader(&b, "trout_livestate_apply_errors_total", "counter",
		"Events rejected by the live-state engine (duplicate, unknown job, stale order).")
	fmt.Fprintf(&b, "trout_livestate_apply_errors_total %d\n", st.ApplyErrors)

	writeMetricHeader(&b, "trout_queue_pending", "gauge",
		"Pending jobs tracked by the live-state engine, by partition.")
	parts := make([]string, 0, len(st.Partitions))
	for p := range st.Partitions {
		parts = append(parts, p)
	}
	sort.Strings(parts)
	for _, p := range parts {
		fmt.Fprintf(&b, "trout_queue_pending{partition=%q} %d\n", p, st.Partitions[p].Pending)
	}
	writeMetricHeader(&b, "trout_queue_running", "gauge",
		"Running jobs tracked by the live-state engine, by partition.")
	for _, p := range parts {
		fmt.Fprintf(&b, "trout_queue_running{partition=%q} %d\n", p, st.Partitions[p].Running)
	}
	writeMetricHeader(&b, "trout_livestate_tracked_jobs", "gauge",
		"Jobs held by the live-state engine (active + retained history).")
	fmt.Fprintf(&b, "trout_livestate_tracked_jobs %d\n", st.Tracked)
	writeMetricHeader(&b, "trout_livestate_history_entries", "gauge",
		"Submission-history records inside the 24h rolling window.")
	fmt.Fprintf(&b, "trout_livestate_history_entries %d\n", st.HistoryEntries)
	writeMetricHeader(&b, "trout_livestate_now_seconds", "gauge",
		"The engine's event clock (unix seconds of the newest applied event).")
	fmt.Fprintf(&b, "trout_livestate_now_seconds %d\n", st.Now)

	// Durability: WAL position vs last checkpoint.
	m := s.live.Metrics()
	writeMetricHeader(&b, "trout_wal_lag_records", "gauge",
		"Applied events not yet covered by a checkpoint (LSN - checkpoint LSN).")
	fmt.Fprintf(&b, "trout_wal_lag_records %d\n", m.LSN-m.CheckpointLSN)
	writeMetricHeader(&b, "trout_wal_bytes", "gauge",
		"Current write-ahead log size in bytes (0 for memory-only stores).")
	fmt.Fprintf(&b, "trout_wal_bytes %d\n", m.WALBytes)
	writeMetricHeader(&b, "trout_checkpoints_total", "counter",
		"Checkpoints taken since the store opened.")
	fmt.Fprintf(&b, "trout_checkpoints_total %d\n", m.Checkpoints)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}

func writeMetricHeader(b *strings.Builder, name, kind, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

// writeLabelledCounters emits one sample per key, sorted for determinism.
func writeLabelledCounters(b *strings.Builder, name, label string, vals map[string]uint64) {
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "%s{%s=%q} %d\n", name, label, k, vals[k])
	}
}
