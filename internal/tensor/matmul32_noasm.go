//go:build !amd64

package tensor

// haveSSE is false off amd64; the portable kernel is bit-identical, so
// nothing above this layer can observe the difference.
const haveSSE = false

// matmulTransB32SSE is never called when haveSSE is false; this stub only
// satisfies the reference in MatMulTransBInto32.
func matmulTransB32SSE(a, wt, bias, dst *float32, outs, inPad int64, lim float32) {
	panic("tensor: SSE kernel called on non-amd64 build")
}

// eluSSE is never called when haveSSE is false; EluInPlace32 runs the
// scalar replica instead.
func eluSSE(p *float32, n int64) {
	panic("tensor: SSE kernel called on non-amd64 build")
}
