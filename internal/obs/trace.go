package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"sync"
	"time"
)

// Canonical predict-pipeline stage names, used as the "stage" label on
// the per-stage latency histogram and in span records. Keeping them
// centralized bounds the label cardinality.
const (
	StageSnapshot  = "snapshot"  // queue-state resolution (engine or trace scan)
	StageFeaturize = "featurize" // engineered 33-feature row construction
	StageScale     = "scale"     // scaler transform
	StageClassify  = "classify"  // classifier head forward pass
	StageRegress   = "regress"   // regressor head forward pass
	StageFallback  = "fallback"  // degraded tiers (GBDT, partition median)
	StageBatchNN   = "batch_nn"  // whole-batch mini-batched NN pass
)

// TraceIDHeader is the request/response header carrying the trace ID.
const TraceIDHeader = "X-Request-ID"

// maxTraceIDLen bounds accepted client-supplied IDs so a hostile header
// cannot bloat logs.
const maxTraceIDLen = 64

// NewTraceID returns a fresh 16-hex-char random trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a constant ID keeps
		// requests flowing and is still greppable.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// SanitizeTraceID vets a client-supplied trace ID: printable ASCII
// without quotes or spaces, bounded length. Anything else is rejected
// (empty return) and the caller should generate a fresh ID.
func SanitizeTraceID(id string) string {
	if id == "" || len(id) > maxTraceIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return ""
		}
	}
	return id
}

type ctxKey int

const (
	traceIDKey ctxKey = iota
	spansKey
)

// WithTraceID stores a trace ID in the context.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey, id)
}

// TraceIDFrom returns the request's trace ID ("" outside an
// instrumented request).
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey).(string)
	return id
}

// Span is one timed stage of a request's pipeline.
type Span struct {
	Stage   string  `json:"stage"`
	Seconds float64 `json:"seconds"`
}

// Spans collects the stage timings of one request. The zero value is
// ready to use, and a nil *Spans is safe to record into (a no-op), so
// pipeline code can time unconditionally. The mutex matters because the
// deadline middleware runs handlers on a separate goroutine: a handler
// racing its own 504 may still be appending while the access logger
// reads.
type Spans struct {
	mu sync.Mutex
	s  []Span
	// Optional hierarchical-trace attachment (AttachTree): when set,
	// every Observe also records a tree span under `parent`.
	tb     *TraceBuf
	parent uint64
}

// Observe appends one stage timing. Safe on a nil receiver. With a
// trace tree attached, the stage additionally materializes as a child
// span reconstructed as [now-seconds, now].
func (sp *Spans) Observe(stage string, seconds float64) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.s = append(sp.s, Span{Stage: stage, Seconds: seconds})
	tb, parent := sp.tb, sp.parent
	sp.mu.Unlock()
	if tb != nil {
		tb.observed(parent, stage, seconds)
	}
}

// Time starts a stage timer; the returned func stops it and records the
// span. Safe on a nil receiver.
//
//	defer sp.Time(obs.StageFeaturize)()
func (sp *Spans) Time(stage string) func() {
	if sp == nil {
		return func() {}
	}
	start := time.Now()
	return func() { sp.Observe(stage, time.Since(start).Seconds()) }
}

// Snapshot copies the recorded spans. Safe on a nil receiver.
func (sp *Spans) Snapshot() []Span {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return append([]Span(nil), sp.s...)
}

// LogValue renders the spans as a structured log attribute: one group
// member per stage, seconds as the value.
func (sp *Spans) LogValue() slog.Value {
	spans := sp.Snapshot()
	attrs := make([]slog.Attr, len(spans))
	for i, s := range spans {
		attrs[i] = slog.Float64(s.Stage, s.Seconds)
	}
	return slog.GroupValue(attrs...)
}

// WithSpans stores a span recorder in the context.
func WithSpans(ctx context.Context, sp *Spans) context.Context {
	return context.WithValue(ctx, spansKey, sp)
}

// SpansFrom returns the request's span recorder, or nil outside an
// instrumented request (every recorder method is nil-safe).
func SpansFrom(ctx context.Context) *Spans {
	sp, _ := ctx.Value(spansKey).(*Spans)
	return sp
}
