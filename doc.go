// Package trout is a from-scratch Go reproduction of "A Hierarchical Deep
// Learning Approach for Predicting Job Queue Times in HPC Systems"
// (SC 2024). It predicts how long a Slurm job will wait in the queue using
// a two-stage model: a binary classifier for quick-start jobs (< 10 minutes)
// and a regression network for the rest.
//
// The package is the public facade over the substrates in internal/: an
// event-driven Slurm-like cluster simulator and synthetic workload generator
// (standing in for the proprietary Anvil accounting trace), interval-tree
// feature engineering, a stdlib-only neural-network stack, SMOTE balancing,
// gradient-boosted/random-forest/kNN baselines, time-series cross-validation
// and hyperparameter search.
//
// The typical flow:
//
//	p := trout.DefaultPipeline(60000, 1)
//	tr, cluster, _ := p.GenerateTrace()
//	ds, _ := p.BuildDataset(tr, cluster)
//	m, fold, _ := trout.TrainHoldout(ds, p.Model, 0.2)
//	pred := m.Predict(ds.X[fold.Test[0]])
//	fmt.Println(pred.Message(10))
//
// Every table and figure of the paper's evaluation can be regenerated with
// the experiment runners in this package (see cmd/experiments and
// EXPERIMENTS.md).
package trout
