package main

import (
	"fmt"
	"time"

	"repro/internal/slurmsim"
	"repro/internal/workload"
)

func main() {
	for _, seed := range []int64{1, 2, 3} {
		cluster := slurmsim.AnvilLike(1)
		cfg := workload.DefaultConfig(60000, seed)
		specs, _ := workload.Generate(cfg, &cluster)
		t0 := time.Now()
		tr, st, _ := slurmsim.Run(slurmsim.DefaultConfig(1), specs)
		fmt.Printf("seed=%d short=%.3f preemptions=%d elapsed=%v\n",
			seed, tr.ShortQueueFraction(600), st.Preemptions, time.Since(t0).Round(time.Millisecond))
	}
}
