package metrics_test

import (
	"fmt"

	"repro/internal/metrics"
)

// The paper's own motivating example: predicting 1 minute for a 10-minute
// wait is far worse *relatively* than predicting 10 for 30, even though the
// absolute error is smaller.
func ExampleMAPE() {
	fmt.Printf("%.0f%%\n", metrics.MAPE([]float64{1}, []float64{10}))
	fmt.Printf("%.0f%%\n", metrics.MAPE([]float64{10}, []float64{30}))
	// Output:
	// 90%
	// 67%
}

func ExampleConfusion() {
	probs := []float64{0.9, 0.2, 0.7, 0.1}
	labels := []bool{true, false, false, false}
	c := metrics.Confuse(probs, labels)
	fmt.Printf("accuracy %.2f  balanced %.2f\n", c.Accuracy(), c.BalancedAccuracy())
	// Output:
	// accuracy 0.75  balanced 0.83
}

func ExampleWithinPercent() {
	pred := []float64{15, 45, 500}
	actual := []float64{20, 30, 60}
	fmt.Printf("%.2f\n", metrics.WithinPercent(pred, actual, 100))
	// Output:
	// 0.67
}
