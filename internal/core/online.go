package core

import (
	"fmt"
	"math"

	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/smote"
)

// ContinueTraining implements the paper's §V future-work item: online
// learning that keeps predictions current as the cluster drifts. It runs
// additional training epochs of both heads on the rows of ds selected by
// idx (typically the most recent jobs), reusing the model's existing
// feature scaler so the learned weights stay valid. Optimizer moments are
// not carried over from the original run; each update is a fresh Adam run
// at a reduced learning rate, the standard fine-tuning recipe.
func (m *Model) ContinueTraining(ds *features.Dataset, idx []int, epochs int) error {
	if epochs <= 0 {
		return fmt.Errorf("core: ContinueTraining needs positive epochs")
	}
	if len(idx) < 10 {
		return fmt.Errorf("core: ContinueTraining got only %d samples", len(idx))
	}
	X := make([][]float64, len(idx))
	labels := make([]bool, len(idx))
	for k, i := range idx {
		X[k] = m.Scaler.Transform(ds.X[i])
		labels[k] = ds.QueueMinutes[i] >= m.Cfg.CutoffMinutes
	}

	// Classifier update on (re-)balanced fresh data.
	cx, cy := X, labels
	if m.Cfg.UseSMOTE {
		sc := m.Cfg.SMOTE
		sc.Seed = m.Cfg.Seed + 301
		if bx, by, err := smote.Balance(sc, X, labels); err == nil {
			cx, cy = bx, by
		}
	}
	y := make([]float64, len(cy))
	for i, l := range cy {
		if l {
			y[i] = 1
		}
	}
	xm, ym := toMatrices(cx, y)
	clsTrainer := nn.Trainer{
		Net: m.Classifier,
		Opt: nn.NewAdam(m.Cfg.Classifier.LearnRate / 2),
		Cfg: nn.TrainConfig{
			Loss: nn.BCE, Epochs: epochs, BatchSize: m.Cfg.Classifier.BatchSize,
			Workers: m.Cfg.Workers, Seed: m.Cfg.Seed + 302,
		},
	}
	clsTrainer.Fit(xm, ym)

	// Regressor update on the fresh long-job subset (skipped when the
	// window has too few long jobs to learn from).
	var rx [][]float64
	var ry []float64
	for k, i := range idx {
		if ds.QueueMinutes[i] >= m.Cfg.CutoffMinutes {
			rx = append(rx, X[k])
			ry = append(ry, math.Log1p(ds.QueueMinutes[i]))
		}
	}
	if len(rx) >= 10 {
		loss := m.Cfg.RegressorLoss
		if loss == "" {
			loss = nn.SmoothL1
		}
		rxm, rym := toMatrices(rx, ry)
		regTrainer := nn.Trainer{
			Net: m.Regressor,
			Opt: nn.NewAdam(m.Cfg.Regressor.LearnRate / 2),
			Cfg: nn.TrainConfig{
				Loss: loss, Epochs: epochs, BatchSize: m.Cfg.Regressor.BatchSize,
				Workers: m.Cfg.Workers, Seed: m.Cfg.Seed + 303,
			},
		}
		regTrainer.Fit(rxm, rym)
	}
	return nil
}
