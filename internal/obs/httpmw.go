package obs

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// HTTPOptions wires the Instrument middleware to its sinks. Every field
// is optional: a nil logger disables access logging, nil metrics skip
// their updates — trace-ID propagation always runs.
type HTTPOptions struct {
	// Logger receives one structured access-log record per request
	// (msg "request": trace_id, method, path, status, duration, bytes,
	// remote and the request's pipeline spans).
	Logger *slog.Logger
	// Requests counts completed requests; labels {path, code}.
	Requests *CounterVec
	// Latency is the whole-request latency histogram (seconds).
	Latency *Histogram
	// StageLatency receives every pipeline span; label {stage}.
	StageLatency *HistogramVec
	// PathFor maps a request to its metric/log path label (clamping
	// unknown paths bounds label cardinality). Nil uses the URL path.
	PathFor func(*http.Request) string
	// Tracer, when set, opens a hierarchical root span per request and
	// runs the tail-sampling/flight-recorder pipeline at completion.
	Tracer *Tracer
	// SLO, when set, feeds the rolling burn-rate windows.
	SLO *SLOTracker
}

// statusWriter captures the response status and byte count. Unwrap
// keeps http.ResponseController working through the wrap.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Instrument is the observability middleware: it establishes the
// request's trace ID (accepted from X-Request-ID when well-formed,
// generated otherwise), echoes it on the response, attaches a span
// recorder — and, with a Tracer, a hierarchical root span — to the
// context, and on completion records request metrics, per-stage
// latency, SLO windows, the flight recorder / trace export, and a
// structured access-log line carrying the trace ID and spans.
//
// Cross-node continuity: a well-formed X-Trout-Parent-Span header links
// the root span to the caller's span (same trace ID, other node), and
// the header is rewritten to this request's root span ID so a reverse
// proxy hop forwards the linkage downstream.
func Instrument(next http.Handler, o HTTPOptions) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := SanitizeTraceID(r.Header.Get(TraceIDHeader))
		if id == "" {
			id = NewTraceID()
		}
		w.Header().Set(TraceIDHeader, id)

		sp := &Spans{}
		ctx := WithSpans(WithTraceID(r.Context(), id), sp)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()

		var tb *TraceBuf
		var root SpanHandle
		var rootName string
		if o.Tracer.Enabled() {
			remoteParent := ParseSpanID(r.Header.Get(ParentSpanHeader))
			rootName = r.Method + " " + r.URL.Path
			tb, root = o.Tracer.StartTrace(id, rootName, start, remoteParent)
			root.SetAttr("remote", r.RemoteAddr)
			sp.AttachTree(tb, root.ID())
			// Forward our root as the parent for any proxied hop.
			r.Header.Set(ParentSpanHeader, FormatSpanID(root.ID()))
		}

		next.ServeHTTP(sw, r.WithContext(ctx))
		elapsed := time.Since(start)

		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		path := r.URL.Path
		if o.PathFor != nil {
			path = o.PathFor(r)
		}
		codeStr := strconv.Itoa(code)
		if o.Requests != nil {
			o.Requests.Inc(path, codeStr)
		}
		if o.Latency != nil {
			o.Latency.Observe(elapsed.Seconds())
		}
		if o.StageLatency != nil {
			for _, s := range sp.Snapshot() {
				o.StageLatency.Observe(s.Seconds, s.Stage)
			}
		}
		o.SLO.Observe(code, elapsed)
		if tb != nil {
			root.SetAttr("status", codeStr)
			root.SetAttrInt("bytes", sw.bytes)
			if path != r.URL.Path {
				// Unknown path clamped by PathFor: rename the root so the
				// recorder and export share the bounded-cardinality label.
				rootName = r.Method + " " + path
			}
			o.Tracer.FinishRequest(tb, root, rootName, code, elapsed)
		}
		if o.Logger != nil {
			o.Logger.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("trace_id", id),
				slog.String("method", r.Method),
				slog.String("path", path),
				slog.Int("status", code),
				slog.Float64("duration_seconds", elapsed.Seconds()),
				slog.Int64("bytes", sw.bytes),
				slog.String("remote", r.RemoteAddr),
				slog.Any("spans", sp),
			)
		}
	})
}
