package controlplane

import (
	"context"
	"sync/atomic"

	"repro/internal/features"
	"repro/internal/obs"
)

// Predictor is what shadow scoring needs from a candidate model: one
// prediction per snapshot, in the same (prob, minutes, long) shape the
// serving path produces. The root package adapts its Bundle's fallback
// chain to this.
type Predictor interface {
	ShadowPredict(snap *features.Snapshot) (prob, minutes float64, long bool, err error)
}

// shadowItem is one served prediction captured for shadow scoring: the
// snapshot the incumbent answered from, plus the incumbent's answer. The
// worker replays the snapshot through the candidate and records both
// answers, so the two trackers see exactly the same traffic and resolve
// against exactly the same start events.
type shadowItem struct {
	jobID   int
	snap    *features.Snapshot
	prob    float64
	minutes float64
	long    bool
}

// shadowRun scores one candidate against the incumbent on live traffic.
// Feeding is strictly off the hot path: ObserveServed does one atomic
// pointer load and a non-blocking channel send — a full queue drops the
// sample (counted) rather than ever delaying a response.
type shadowRun struct {
	version   int
	id        string
	predictor Predictor
	queue     chan shadowItem

	// cand and inc are joined against the same start events, so their
	// rolling windows are directly comparable.
	cand *obs.AccuracyTracker
	inc  *obs.AccuracyTracker

	scored  atomic.Uint64
	dropped atomic.Uint64
	errs    atomic.Uint64
}

func newShadowRun(version int, id string, p Predictor, cutoff float64, queueCap, window int) *shadowRun {
	if queueCap <= 0 {
		queueCap = 256
	}
	return &shadowRun{
		version:   version,
		id:        id,
		predictor: p,
		queue:     make(chan shadowItem, queueCap),
		cand:      obs.NewAccuracyTracker(cutoff, 0, window),
		inc:       obs.NewAccuracyTracker(cutoff, 0, window),
	}
}

// offer enqueues one served prediction without ever blocking.
func (sr *shadowRun) offer(it shadowItem) {
	select {
	case sr.queue <- it:
	default:
		sr.dropped.Add(1)
	}
}

// loop consumes the queue until ctx ends, scoring the candidate on each
// captured snapshot. Candidate predictions that error are counted and the
// sample is skipped for both trackers (recording only the incumbent would
// skew the comparison windows apart).
func (sr *shadowRun) loop(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case it := <-sr.queue:
			prob, minutes, long, err := sr.predictor.ShadowPredict(it.snap)
			if err != nil {
				sr.errs.Add(1)
				continue
			}
			sr.cand.Record(it.jobID, prob, minutes, long)
			sr.inc.Record(it.jobID, it.prob, it.minutes, it.long)
			sr.scored.Add(1)
		}
	}
}

// resolve joins a realized start event into both trackers.
func (sr *shadowRun) resolve(jobID int, eligible, start int64) {
	sr.cand.Resolve(jobID, eligible, start)
	sr.inc.Resolve(jobID, eligible, start)
}
