package trout

import (
	"sync"

	"repro/internal/livestate"
	"repro/internal/obs"
	"repro/internal/trace"
)

// snapCacheSlots bounds the cache to a handful of distinct prediction
// instants. Live traffic asks about "now", so one slot is hot and the rest
// absorb stragglers (clients probing nearby instants, replayed tests).
const snapCacheSlots = 8

// snapCacheRetries bounds how often an assembly retries after losing a
// version race before bypassing the cache entirely.
const snapCacheRetries = 4

// Cache lookup outcomes for trout_snapshot_cache_requests_total.
const (
	cacheHit    = "hit"
	cacheMiss   = "miss"
	cacheStale  = "stale"
	cacheBypass = "bypass"
)

// snapEntry is one cached extraction: the cluster-wide pending/running
// sets at (ver, at), plus per-user history resolved lazily on first use.
// Pending/running are shared read-only across every snapshot assembled
// from the entry — exactly the sharing SnapshotBatch does within one
// request, widened to all concurrent requests at the same instant.
type snapEntry struct {
	ver     uint64
	at      int64
	pending []trace.Job
	running []trace.Job

	// used is the LRU stamp, written under the cache mutex.
	used uint64

	// hist caches per-user past-day submission history. Entries are only
	// added after the engine confirms it is still at ver, so every value
	// in the map is consistent with pending/running.
	hmu  sync.RWMutex
	hist map[int][]trace.Job
}

// history returns the entry's cached past-day history for user, resolving
// it from the engine on first use. ok=false means the engine moved past
// the entry's version while resolving — the whole entry is stale and the
// caller must start over.
func (e *snapEntry) history(eng *livestate.Engine, user int) ([]trace.Job, bool) {
	e.hmu.RLock()
	h, ok := e.hist[user]
	e.hmu.RUnlock()
	if ok {
		return h, true
	}
	h, ok = eng.UserHistoryChecked(user, e.at, e.ver)
	if !ok {
		return nil, false
	}
	e.hmu.Lock()
	e.hist[user] = h
	e.hmu.Unlock()
	return h, true
}

// snapCache shares livestate snapshot extractions across concurrent
// requests. Entries are keyed (engine version, instant): the version moves
// on every applied event, /state reseed, follower WAL replay, and
// checkpoint restore, so any mutation orphans every cached entry at once —
// there is no explicit invalidation path to forget. A cold miss is
// computed exactly once (the build runs under the cache mutex, so
// concurrent misses for the same key queue behind the builder and then
// hit), and requests at a superseded version rebuild rather than serve
// pre-event state.
type snapCache struct {
	eng *livestate.Engine
	ops *obs.CounterVec // trout_snapshot_cache_requests_total{result}; may be nil

	mu    sync.Mutex
	clock uint64
	ents  [snapCacheSlots]*snapEntry
}

func newSnapCache(eng *livestate.Engine, ops *obs.CounterVec) *snapCache {
	return &snapCache{eng: eng, ops: ops}
}

func (c *snapCache) count(result string) {
	if c.ops != nil {
		c.ops.Inc(result)
	}
}

// entry returns the live cache entry for instant at, building one if the
// cache has no entry at the engine's current version. The bool reports
// whether the lookup was a hit.
func (c *snapCache) entry(at int64) (*snapEntry, bool) {
	c.mu.Lock()
	c.clock++
	stamp := c.clock
	ver := c.eng.Version()
	victim := 0
	for i, e := range c.ents {
		if e == nil {
			victim = i
			continue
		}
		if e.at == at && e.ver == ver {
			e.used = stamp
			c.mu.Unlock()
			return e, true
		}
		if c.ents[victim] != nil && e.used < c.ents[victim].used {
			victim = i
		}
	}
	// Miss: build while holding c.mu — that IS the singleflight. Every
	// concurrent request for this (ver, at) blocks here and finds the
	// fresh entry on its own pass. The extraction re-reads the version
	// under the engine lock, so the stored pair is exact even if an event
	// landed between our version read and the extraction.
	pending, running, ver2 := c.eng.PendingRunning(at)
	e := &snapEntry{
		ver: ver2, at: at, pending: pending, running: running,
		used: stamp, hist: make(map[int][]trace.Job, 16),
	}
	c.ents[victim] = e
	c.mu.Unlock()
	return e, false
}

// snapshotAt assembles a snapshot for target at an instant from cached
// parts, equivalent to eng.SnapshotAt(target, at). Pending/running/history
// slices are shared — callers must treat them as read-only (featurization
// already does).
func (c *snapCache) snapshotAt(target trace.Job, at int64) *Snapshot {
	for range snapCacheRetries {
		e, hit := c.entry(at)
		h, ok := e.history(c.eng, target.User)
		if !ok {
			c.count(cacheStale)
			continue
		}
		if hit {
			c.count(cacheHit)
		} else {
			c.count(cacheMiss)
		}
		return &Snapshot{Now: at, Target: target, Pending: e.pending, Running: e.running, History: h}
	}
	// The engine is mutating faster than we can pin a version; take one
	// internally-consistent extraction directly.
	c.count(cacheBypass)
	return c.eng.SnapshotAt(target, at)
}

// snapshotBatch assembles snapshots for many targets at one instant,
// equivalent to eng.SnapshotBatch(jobs, at): pending/running resolved
// once, history once per distinct user — but cached across requests, not
// just within one batch.
func (c *snapCache) snapshotBatch(jobs []trace.Job, at int64) []*Snapshot {
retry:
	for range snapCacheRetries {
		e, hit := c.entry(at)
		snaps := make([]*Snapshot, len(jobs))
		for i := range jobs {
			h, ok := e.history(c.eng, jobs[i].User)
			if !ok {
				c.count(cacheStale)
				continue retry
			}
			snaps[i] = &Snapshot{Now: at, Target: jobs[i], Pending: e.pending, Running: e.running, History: h}
		}
		if hit {
			c.count(cacheHit)
		} else {
			c.count(cacheMiss)
		}
		return snaps
	}
	c.count(cacheBypass)
	return c.eng.SnapshotBatch(jobs, at)
}
