package replication

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/livestate"
	"repro/internal/resilience"
	"repro/internal/trace"
)

func mkJob(id, user int, part string, submit int64) trace.Job {
	return trace.Job{
		ID: id, User: user, Partition: part, State: trace.StateCompleted,
		Submit: submit, ReqCPUs: 4, ReqMemGB: 8, ReqNodes: 1, TimeLimit: 3600, Priority: 1000,
	}
}

// feed applies a submit+eligible pair per job, plus starts for even IDs.
func feed(t *testing.T, s *livestate.Store, firstID, n int) {
	t.Helper()
	for i := firstID; i < firstID+n; i++ {
		j := mkJob(i, i%3, "shared", int64(1000+10*i))
		ev := livestate.Event{Type: livestate.EventSubmit, Time: j.Submit, Job: &j}
		if err := s.Apply(ev); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if err := s.Apply(livestate.Event{Type: livestate.EventEligible, Time: int64(1001 + 10*i), JobID: i}); err != nil {
			t.Fatalf("eligible %d: %v", i, err)
		}
		if i%2 == 0 {
			if err := s.Apply(livestate.Event{Type: livestate.EventStart, Time: int64(1005 + 10*i), JobID: i}); err != nil {
				t.Fatalf("start %d: %v", i, err)
			}
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

// fastRetry keeps test reconnects snappy.
var fastRetry = resilience.Policy{InitialInterval: 5 * time.Millisecond, MaxInterval: 50 * time.Millisecond}

func newLeaderServer(t *testing.T, s *livestate.Store, opt LeaderOptions) (*Leader, *httptest.Server) {
	t.Helper()
	l := NewLeader(s, opt)
	mux := http.NewServeMux()
	l.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return l, srv
}

func startFollower(t *testing.T, cfg FollowerConfig) (*Follower, context.CancelFunc) {
	t.Helper()
	if cfg.Retry.InitialInterval == 0 {
		cfg.Retry = fastRetry
	}
	if cfg.PollWait == 0 {
		cfg.PollWait = 200 * time.Millisecond
	}
	f, err := NewFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = f.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("follower did not stop")
		}
	})
	return f, cancel
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func converged(leader, follower *livestate.Store) bool {
	lm, fm := leader.Metrics(), follower.Metrics()
	return fm.LSN == lm.LSN && fm.Gen == lm.Gen
}

func requireSameState(t *testing.T, leader, follower *livestate.Store) {
	t.Helper()
	if lf, ff := leader.Engine().Fingerprint(), follower.Engine().Fingerprint(); lf != ff {
		t.Fatalf("engines diverged: leader %x follower %x", lf, ff)
	}
}

func TestFollowerCatchUpAndLiveTail(t *testing.T) {
	ls, err := livestate.OpenStore(livestate.StoreOptions{Dir: t.TempDir(), SyncEvery: -1, SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	feed(t, ls, 1, 40)

	_, srv := newLeaderServer(t, ls, LeaderOptions{})
	fs, err := livestate.OpenStore(livestate.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	f, _ := startFollower(t, FollowerConfig{LeaderURL: srv.URL, Store: fs})

	// Historical catch-up across sealed segments.
	waitUntil(t, "initial catch-up", func() bool { return converged(ls, fs) && f.Stats().CaughtUp })
	requireSameState(t, ls, fs)
	st := f.Stats()
	if !st.CaughtUp || st.LagEvents != 0 {
		t.Fatalf("stats after catch-up: %+v", st)
	}
	if err := f.Err(); err != nil {
		t.Fatalf("healthy follower reports %v", err)
	}

	// Live tail: new leader writes arrive via the long-poll without restart.
	feed(t, ls, 100, 10)
	waitUntil(t, "live tail", func() bool { return converged(ls, fs) })
	requireSameState(t, ls, fs)
	if f.Stats().Resnapshots != 0 {
		t.Fatalf("clean tail should not re-snapshot: %+v", f.Stats())
	}
}

func TestFollowerResnapshotsWhenBehindRetention(t *testing.T) {
	ls, err := livestate.OpenStore(livestate.StoreOptions{
		Dir: t.TempDir(), SyncEvery: -1, SegmentBytes: 1024, RetainSegments: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	feed(t, ls, 1, 60)
	if err := ls.Checkpoint(); err != nil { // prunes history beyond retention
		t.Fatal(err)
	}
	if ls.OldestLSN() <= 1 {
		t.Fatalf("precondition: history not pruned (oldest %d)", ls.OldestLSN())
	}

	_, srv := newLeaderServer(t, ls, LeaderOptions{})
	fs, err := livestate.OpenStore(livestate.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	f, _ := startFollower(t, FollowerConfig{LeaderURL: srv.URL, Store: fs})

	waitUntil(t, "snapshot-based catch-up", func() bool { return converged(ls, fs) })
	requireSameState(t, ls, fs)
	if f.Stats().Resnapshots == 0 {
		t.Fatal("follower behind retention must re-snapshot")
	}

	// And it keeps tailing from the restored position.
	feed(t, ls, 200, 5)
	waitUntil(t, "tail after snapshot", func() bool { return converged(ls, fs) })
	requireSameState(t, ls, fs)
}

func TestFollowerResnapshotsOnGenChange(t *testing.T) {
	ls, err := livestate.OpenStore(livestate.StoreOptions{Dir: t.TempDir(), SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	feed(t, ls, 1, 10)

	_, srv := newLeaderServer(t, ls, LeaderOptions{})
	fs, err := livestate.OpenStore(livestate.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	f, _ := startFollower(t, FollowerConfig{LeaderURL: srv.URL, Store: fs})
	waitUntil(t, "catch-up", func() bool { return converged(ls, fs) })

	// Replace the leader's world outside the WAL stream (POST /state path).
	tr := &trace.Trace{Jobs: []trace.Job{mkJob(900, 1, "gpu", 5000), mkJob(901, 2, "gpu", 5010)}}
	if _, err := ls.Seed(tr); err != nil {
		t.Fatal(err)
	}
	feed(t, ls, 950, 3) // keep writing on the new generation

	waitUntil(t, "gen-change re-snapshot", func() bool { return converged(ls, fs) })
	requireSameState(t, ls, fs)
	if f.Stats().Resnapshots == 0 {
		t.Fatal("generation change must force a re-snapshot")
	}
}

func TestLeaderLongPollAndStatus(t *testing.T) {
	ls, err := livestate.OpenStore(livestate.StoreOptions{Dir: t.TempDir(), SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	feed(t, ls, 1, 3)
	l, srv := newLeaderServer(t, ls, LeaderOptions{})

	// At-head long-poll with a short window returns 204 + position headers.
	lsn := ls.DurableLSN()
	resp, err := http.Get(fmt.Sprintf("%s/replication/wal?from=%d&wait=50ms", srv.URL, lsn))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("at-head poll: %d", resp.StatusCode)
	}
	if resp.Header.Get(HeaderLeaderLSN) == "" || resp.Header.Get(HeaderStateGen) == "" {
		t.Fatal("204 missing position headers")
	}
	if l.Stats().LongPollIdles != 1 {
		t.Fatalf("stats: %+v", l.Stats())
	}

	// A follower claiming a future position gets 409.
	resp, err = http.Get(fmt.Sprintf("%s/replication/wal?from=%d", srv.URL, lsn+100))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("ahead-of-leader fetch: %d, want 409", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/replication/status")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", resp.StatusCode)
	}
}

func TestFollowerNotReadyBeforeFirstContact(t *testing.T) {
	fs, err := livestate.OpenStore(livestate.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	f, err := NewFollower(FollowerConfig{LeaderURL: "http://127.0.0.1:1", Store: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Err(); err == nil {
		t.Fatal("follower with no leader contact must not be ready")
	}
}

// TestReplicationRace runs one leader and two followers with concurrent
// ingest, a mid-run state swap (Seed), and concurrent metric reads — the
// -race exercise ISSUE 6 asks for. Both replicas must converge to the
// leader's exact engine state.
func TestReplicationRace(t *testing.T) {
	ls, err := livestate.OpenStore(livestate.StoreOptions{Dir: t.TempDir(), SyncEvery: 8, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	_, srv := newLeaderServer(t, ls, LeaderOptions{})

	var followers []*livestate.Store
	for i := 0; i < 2; i++ {
		fs, err := livestate.OpenStore(livestate.StoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer fs.Close()
		startFollower(t, FollowerConfig{LeaderURL: srv.URL, Store: fs, PollWait: 50 * time.Millisecond})
		followers = append(followers, fs)
	}

	const writers, perWriter = 3, 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := 1 + w*1000 + i
				j := mkJob(id, w, "shared", int64(1000+id))
				// Engine rejections are expected around the mid-run Seed
				// (events for pre-swap jobs); the WAL still records them
				// identically on every node, which is what convergence needs.
				_ = ls.Apply(livestate.Event{Type: livestate.EventSubmit, Time: j.Submit, Job: &j})
				_ = ls.Apply(livestate.Event{Type: livestate.EventEligible, Time: j.Submit + 1, JobID: id})
			}
		}(w)
	}
	// Concurrent readers: metrics + snapshots while ingest runs.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = ls.Metrics()
				_, _ = ls.WriteSnapshot(io.Discard)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	// Mid-run state swap.
	time.Sleep(20 * time.Millisecond)
	tr := &trace.Trace{Jobs: []trace.Job{mkJob(9000, 5, "gpu", 9000)}}
	if _, err := ls.Seed(tr); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	if err := ls.Sync(); err != nil {
		t.Fatal(err)
	}

	for i, fs := range followers {
		fs := fs
		waitUntil(t, fmt.Sprintf("follower %d convergence", i), func() bool { return converged(ls, fs) })
		requireSameState(t, ls, fs)
	}
}
