package trout

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/features"
)

// Snapshot is a live queue view used for deployment-side prediction.
type Snapshot = features.Snapshot

// Bundle is everything the prediction CLI needs: the trained hierarchical
// model, the runtime predictor that feeds its Pred-Runtime features, and
// the cluster description the features were engineered against.
type Bundle struct {
	Model   *core.Model
	Runtime *features.RuntimePredictor
	Cluster ClusterSpec
}

// NewBundle assembles a deployment bundle from a trained model and the
// dataset it was trained on.
func NewBundle(m *Model, ds *Dataset, cluster *ClusterSpec) (*Bundle, error) {
	if m == nil || ds == nil || ds.Runtime == nil || cluster == nil {
		return nil, fmt.Errorf("trout: bundle needs a model, dataset with runtime predictor, and cluster")
	}
	return &Bundle{Model: m, Runtime: ds.Runtime, Cluster: *cluster}, nil
}

// PredictSnapshot runs Algorithm 1 on a live queue snapshot.
func (b *Bundle) PredictSnapshot(snap *Snapshot) (Prediction, error) {
	row, err := features.SnapshotRow(snap, &b.Cluster, b.Runtime)
	if err != nil {
		return Prediction{}, err
	}
	return b.Model.Predict(row), nil
}

// FeatureRow exposes the engineered feature vector for a snapshot (used by
// the dashboard service's debugging endpoint).
func (b *Bundle) FeatureRow(snap *Snapshot) ([]float64, error) {
	return features.SnapshotRow(snap, &b.Cluster, b.Runtime)
}

// SnapshotFromTrace reconstructs the queue state a trace job observed at
// its eligibility instant — what the CLI does when pointed at an accounting
// file and a job ID.
func SnapshotFromTrace(tr *Trace, jobID int) (*Snapshot, error) {
	var target *Job
	for i := range tr.Jobs {
		if tr.Jobs[i].ID == jobID {
			target = &tr.Jobs[i]
			break
		}
	}
	if target == nil {
		return nil, fmt.Errorf("trout: job %d not found in trace", jobID)
	}
	t := target.Eligible
	snap := &Snapshot{Now: t, Target: *target}
	for i := range tr.Jobs {
		j := tr.Jobs[i]
		if j.ID != jobID {
			switch {
			case j.Eligible <= t && t < j.Start:
				snap.Pending = append(snap.Pending, j)
			case j.Start <= t && t < j.End:
				snap.Running = append(snap.Running, j)
			}
		}
		// The target's own submission belongs in its user history when
		// it predates the prediction instant (dependency-held jobs).
		if j.Submit >= t-86400 && j.Submit < t {
			snap.History = append(snap.History, j)
		}
	}
	return snap, nil
}

// bundleDTO is the gob wire form of a Bundle.
type bundleDTO struct {
	Model   []byte
	Runtime []byte
	Cluster ClusterSpec
}

// Save writes the bundle.
func (b *Bundle) Save(w io.Writer) error {
	var mb bytes.Buffer
	if err := b.Model.Save(&mb); err != nil {
		return err
	}
	rb, err := b.Runtime.Bytes()
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(bundleDTO{Model: mb.Bytes(), Runtime: rb, Cluster: b.Cluster})
}

// LoadBundle reads a bundle written by Save.
func LoadBundle(r io.Reader) (*Bundle, error) {
	var dto bundleDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("trout: load bundle: %w", err)
	}
	m, err := core.Load(bytes.NewReader(dto.Model))
	if err != nil {
		return nil, err
	}
	rp, err := features.RuntimePredictorFromBytes(dto.Runtime)
	if err != nil {
		return nil, err
	}
	return &Bundle{Model: m, Runtime: rp, Cluster: dto.Cluster}, nil
}

// SaveFile writes the bundle to a path.
func (b *Bundle) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := b.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadBundleFile reads a bundle from a path.
func LoadBundleFile(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadBundle(f)
}
