package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// exp32Specials are the lanes most likely to expose a divergence between
// the SSE kernel and the scalar replica: NaN (must pass through), ±Inf,
// signed zero, the clamp boundary, huge magnitudes that overflow the
// n conversion, and values straddling the exp(0)=1 cancellation.
var exp32Specials = []float32{
	float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
	0, float32(math.Copysign(0, -1)),
	-87, -86.999, -87.001, -200, -1e30, 1e30,
	-1e-8, 1e-8, -0.5, 0.5, -1, 1, -20, 20, 88,
	math.MaxFloat32, -math.MaxFloat32, 1.1754944e-38, -1.1754944e-38,
}

// TestElu32SSEMatchesGo pins the kernel contract: EluInPlace32 (SSE path
// on amd64) and the scalar replica elu32 produce bit-identical lanes for
// random and special values, at lengths exercising both the vector body
// and the scalar tail.
func TestElu32SSEMatchesGo(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{1, 3, 4, 5, 8, 31, 64, 257} {
		buf := make([]float32, n)
		for i := range buf {
			switch {
			case i%7 == 3:
				buf[i] = exp32Specials[rng.Intn(len(exp32Specials))]
			default:
				buf[i] = float32(rng.NormFloat64() * 10)
			}
		}
		got := append([]float32(nil), buf...)
		EluInPlace32(got)
		for i, x := range buf {
			want := elu32(x)
			if math.Float32bits(want) != math.Float32bits(got[i]) {
				t.Fatalf("n=%d lane %d: elu(%v): kernel %v (%#x), scalar %v (%#x)",
					n, i, x, got[i], math.Float32bits(got[i]), want, math.Float32bits(want))
			}
		}
	}
}

// TestElu32Semantics checks the values the blend must get exactly right:
// identity on positives, exact zero at zero (the padding-lane invariant),
// saturation to -1 for very negative inputs, and NaN pass-through.
func TestElu32Semantics(t *testing.T) {
	for _, x := range []float32{0.5, 1, 42, 1e30, float32(math.Inf(1))} {
		if got := elu32(x); got != x {
			t.Fatalf("elu32(%v) = %v, want identity", x, got)
		}
	}
	if got := elu32(0); math.Float32bits(got) != 0 {
		t.Fatalf("elu32(+0) = %v (%#x), want exactly +0", got, math.Float32bits(got))
	}
	if got := elu32(float32(math.Copysign(0, -1))); math.Float32bits(got) != 0 {
		t.Fatalf("elu32(-0) = %v (%#x), want exactly +0", got, math.Float32bits(got))
	}
	for _, x := range []float32{-200, -1e30, float32(math.Inf(-1))} {
		got := elu32(x)
		if math.Abs(float64(got)+1) > 1e-6 {
			t.Fatalf("elu32(%v) = %v, want ~-1", x, got)
		}
	}
	if got := elu32(float32(math.NaN())); !math.IsNaN(float64(got)) {
		t.Fatalf("elu32(NaN) = %v, want NaN", got)
	}
}

// TestExp32Accuracy pins the polynomial's error bound against math.Exp
// over the clamped range: at most 4 float32 ulps (Cephes documents ~2; the
// slack covers the argument-reduction rounding at large |x|).
func TestExp32Accuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	check := func(x float32) {
		ref := float32(math.Exp(float64(x)))
		got := Exp32(x)
		d := int64(math.Float32bits(ref)) - int64(math.Float32bits(got))
		if d < 0 {
			d = -d
		}
		if d > 4 {
			t.Fatalf("Exp32(%v) = %v, want %v (%d ulps)", x, got, ref, d)
		}
	}
	for x := float32(-87); x <= 88; x += 0.25 {
		check(x)
	}
	for i := 0; i < 10000; i++ {
		check(float32(rng.Float64()*175 - 87))
	}
	// ELU's working range gets a denser sweep.
	for i := 0; i < 10000; i++ {
		check(float32(-rng.ExpFloat64()))
	}
	if got := Exp32(0); got != 1 {
		t.Fatalf("Exp32(0) = %v, want exactly 1", got)
	}
	if got := Exp32(float32(math.NaN())); !math.IsNaN(float64(got)) {
		t.Fatalf("Exp32(NaN) = %v, want NaN", got)
	}
	// Clamp behavior: finite at both ends, monotone direction preserved.
	if got := Exp32(float32(math.Inf(1))); math.IsInf(float64(got), 0) || got < 1e38 {
		t.Fatalf("Exp32(+Inf) = %v, want large finite", got)
	}
	if got := Exp32(float32(math.Inf(-1))); got <= 0 || got > 1e-37 {
		t.Fatalf("Exp32(-Inf) = %v, want tiny positive", got)
	}
}

// BenchmarkEluInPlace32 measures the kernel over one regressor-sized
// activation region (64 rows x 128 lanes).
func BenchmarkEluInPlace32(b *testing.B) {
	rng := rand.New(rand.NewSource(44))
	buf := make([]float32, 64*128)
	src := make([]float32, len(buf))
	for i := range src {
		src[i] = float32(rng.NormFloat64())
	}
	b.SetBytes(int64(len(buf) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		EluInPlace32(buf)
	}
}
