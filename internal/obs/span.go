package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Hierarchical request tracing. A TraceBuf accumulates the span tree of
// one trace (an HTTP request, a coalesced flush, a WAL sync, a retrain
// cycle); the Tracer owns the tail-sampling policy, the JSONL exporter
// and the flight recorder. The flat Spans stage timings keep feeding the
// stage histogram exactly as before — when a TraceBuf is attached they
// *additionally* materialize as child spans, so the whole predict
// pipeline shows up in the tree without touching any call site.

// ParentSpanHeader carries the caller's span ID across process
// boundaries (follower write-proxy → leader). The trace ID itself rides
// TraceIDHeader; this header only adds the parent linkage.
const ParentSpanHeader = "X-Trout-Parent-Span"

// maxTraceSpans bounds one trace's span count; further starts are
// counted in TraceBuf.dropped instead of growing without bound.
const maxTraceSpans = 64

// Attr is one key/value span attribute. Values are strings so the
// export schema stays trivial; use SpanHandle.SetAttrInt for numbers.
type Attr struct {
	Key string
	Val string
}

// SpanRec is one node of a trace's span tree. Parent 0 marks the root.
type SpanRec struct {
	ID        uint64
	Parent    uint64
	Name      string
	Start     int64 // unix nanoseconds
	End       int64 // unix nanoseconds; 0 while open
	Err       string
	LinkTrace string // optional link to a span in another trace
	LinkSpan  uint64
	Attrs     []Attr
}

// TraceBuf collects the spans of one trace. It is mutex-guarded for the
// same reason Spans is: the deadline middleware runs handlers on a
// separate goroutine, so a handler racing its own 504 may still be
// appending spans while the middleware finishes the trace. Finishing
// therefore clones the spans it keeps and never recycles the buffer.
type TraceBuf struct {
	mu      sync.Mutex
	traceID string
	spans   []SpanRec
	dropped int
	errored bool
}

// TraceID returns the trace's ID.
func (tb *TraceBuf) TraceID() string {
	if tb == nil {
		return ""
	}
	return tb.traceID
}

// snapshot clones the recorded spans (open spans are closed at now so
// exported trees are always well-formed intervals).
func (tb *TraceBuf) snapshot(now int64) []SpanRec {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	out := make([]SpanRec, len(tb.spans))
	copy(out, tb.spans)
	for i := range out {
		if out[i].End == 0 {
			out[i].End = now
		}
	}
	return out
}

func (tb *TraceBuf) start(parent uint64, name string, at time.Time) SpanHandle {
	tb.mu.Lock()
	if len(tb.spans) >= maxTraceSpans {
		tb.dropped++
		tb.mu.Unlock()
		return SpanHandle{}
	}
	idx := len(tb.spans)
	tb.spans = append(tb.spans, SpanRec{
		ID: nextSpanID(), Parent: parent, Name: name, Start: at.UnixNano(),
	})
	tb.mu.Unlock()
	return SpanHandle{tb: tb, idx: idx}
}

// observed appends an already-measured span (a Spans stage timing): the
// interval is reconstructed as [now-dur, now], clamped into the parent
// span so the exported tree is always properly nested even when the
// measured duration covers time before the parent opened.
func (tb *TraceBuf) observed(parent uint64, name string, seconds float64) {
	end := time.Now().UnixNano()
	start := end - int64(seconds*1e9)
	tb.mu.Lock()
	if len(tb.spans) >= maxTraceSpans {
		tb.dropped++
		tb.mu.Unlock()
		return
	}
	if parent != 0 {
		for i := range tb.spans {
			if tb.spans[i].ID == parent {
				if start < tb.spans[i].Start {
					start = tb.spans[i].Start
				}
				break
			}
		}
	}
	if start > end {
		start = end
	}
	tb.spans = append(tb.spans, SpanRec{
		ID: nextSpanID(), Parent: parent, Name: name, Start: start, End: end,
	})
	tb.mu.Unlock()
}

// SpanHandle mutates one span inside a TraceBuf. The zero value is a
// valid no-op handle, so callers never need nil checks when tracing is
// disabled.
type SpanHandle struct {
	tb  *TraceBuf
	idx int
}

// ID returns the span's ID (0 for a no-op handle).
func (h SpanHandle) ID() uint64 {
	if h.tb == nil {
		return 0
	}
	h.tb.mu.Lock()
	defer h.tb.mu.Unlock()
	return h.tb.spans[h.idx].ID
}

// End closes the span at now.
func (h SpanHandle) End() {
	if h.tb == nil {
		return
	}
	now := time.Now().UnixNano()
	h.tb.mu.Lock()
	if h.tb.spans[h.idx].End == 0 {
		h.tb.spans[h.idx].End = now
	}
	h.tb.mu.Unlock()
}

// EndErr closes the span; a non-nil err marks the span (and the whole
// trace) errored, which forces tail-keeping.
func (h SpanHandle) EndErr(err error) {
	if err != nil {
		h.SetError(err.Error())
	}
	h.End()
}

// SetError marks the span and its trace errored.
func (h SpanHandle) SetError(msg string) {
	if h.tb == nil {
		return
	}
	h.tb.mu.Lock()
	h.tb.spans[h.idx].Err = msg
	h.tb.errored = true
	h.tb.mu.Unlock()
}

// SetAttr attaches a key/value attribute to the span.
func (h SpanHandle) SetAttr(key, val string) {
	if h.tb == nil {
		return
	}
	h.tb.mu.Lock()
	if h.tb.spans[h.idx].Attrs == nil {
		// Root spans carry 3-4 attrs (remote/status/bytes[/reason]);
		// pre-sizing turns the append ladder into one allocation.
		h.tb.spans[h.idx].Attrs = make([]Attr, 0, 4)
	}
	h.tb.spans[h.idx].Attrs = append(h.tb.spans[h.idx].Attrs, Attr{Key: key, Val: val})
	h.tb.mu.Unlock()
}

// SetAttrInt attaches an integer attribute to the span.
func (h SpanHandle) SetAttrInt(key string, val int64) {
	if h.tb == nil {
		return
	}
	h.SetAttr(key, strconv.FormatInt(val, 10))
}

// Link records a pointer from this span to a span in another trace
// (e.g. a coalesced member linking to the shared flush span). Links are
// cross-trace by design and are not checked for in-trace resolution.
func (h SpanHandle) Link(traceID string, span uint64) {
	if h.tb == nil {
		return
	}
	h.tb.mu.Lock()
	h.tb.spans[h.idx].LinkTrace = traceID
	h.tb.spans[h.idx].LinkSpan = span
	h.tb.mu.Unlock()
}

// StartChild opens a child span under this span.
func (h SpanHandle) StartChild(name string) SpanHandle {
	if h.tb == nil {
		return SpanHandle{}
	}
	return h.tb.start(h.ID(), name, time.Now())
}

// --- span IDs ---------------------------------------------------------

// spanSeq is seeded once from crypto/rand; per-span IDs then come from a
// multiplicative hash of an atomic counter — well-distributed 64-bit IDs
// without a rand syscall on the hot path.
var spanSeq atomic.Uint64

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		spanSeq.Store(binary.LittleEndian.Uint64(b[:]))
	}
}

func nextSpanID() uint64 {
	for {
		if id := spanSeq.Add(1) * 0x9E3779B97F4A7C15; id != 0 {
			return id
		}
	}
}

// FormatSpanID renders a span ID as 16 lowercase hex chars.
func FormatSpanID(id uint64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], id)
	return hex.EncodeToString(b[:])
}

// ParseSpanID parses a 16-hex-char span ID; 0 means absent/malformed.
func ParseSpanID(s string) uint64 {
	if len(s) != 16 {
		return 0
	}
	var b [8]byte
	if _, err := hex.Decode(b[:], []byte(s)); err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(b[:])
}

// --- tracer -----------------------------------------------------------

// TracerConfig shapes the tracer. The zero value is a live tracer with
// production defaults: 1% head sampling, 250ms slow threshold, flight
// recorder on, no file export (set Path to enable the JSONL exporter).
type TracerConfig struct {
	// Disabled turns the whole tracer off; every Start returns no-op
	// handles and nothing is recorded.
	Disabled bool
	// SampleRate is the head-sampling fraction of traces exported even
	// when fast and successful. 0 means the 0.01 default; negative
	// disables head sampling (slow/errored traces still export).
	SampleRate float64
	// SlowThreshold tail-keeps any trace at least this slow. 0 means
	// 250ms.
	SlowThreshold time.Duration
	// Path is the JSONL export file ("" disables file export).
	Path string
	// MaxFileBytes rotates the export file past this size (0 = 64 MiB).
	MaxFileBytes int64
	// MaxFiles keeps this many rotated files, current included (0 = 4).
	MaxFiles int
	// QueueLen bounds the export queue; overflow drops the trace and
	// bumps trout_trace_export_dropped_total (0 = 256).
	QueueLen int
	// FlightSlots sizes each flight-recorder ring — N slowest and N most
	// recent errored requests (0 = 32).
	FlightSlots int
}

func (c TracerConfig) withDefaults() TracerConfig {
	if c.SampleRate == 0 {
		c.SampleRate = 0.01
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = 250 * time.Millisecond
	}
	if c.MaxFileBytes == 0 {
		c.MaxFileBytes = 64 << 20
	}
	if c.MaxFiles == 0 {
		c.MaxFiles = 4
	}
	if c.QueueLen == 0 {
		c.QueueLen = 256
	}
	if c.FlightSlots == 0 {
		c.FlightSlots = 32
	}
	return c
}

// TracerStats is a point-in-time view of tracer activity for /metrics.
type TracerStats struct {
	Started       uint64 // traces begun
	KeptHead      uint64 // exported by head sampling
	KeptSlow      uint64 // exported because over the slow threshold
	KeptError     uint64 // exported because errored
	Exported      uint64 // JSONL lines written
	ExportDropped uint64 // traces lost to a full queue or write errors
	SpanDropped   uint64 // spans lost to the per-trace cap
}

// Tracer owns trace lifecycle: buffers, tail-sampling policy, the JSONL
// exporter and the flight recorder. A nil *Tracer is fully inert — every
// method is safe and returns no-op handles — so call sites can wire it
// unconditionally.
type Tracer struct {
	cfg       TracerConfig
	headEvery uint64 // export every Nth trace; 0 = head sampling off
	headSeq   atomic.Uint64
	exp       *exporter
	rec       *Recorder

	started     atomic.Uint64
	keptHead    atomic.Uint64
	keptSlow    atomic.Uint64
	keptErr     atomic.Uint64
	spanDropped atomic.Uint64
}

// NewTracer builds a tracer. Only a Path that cannot be opened errors;
// with Disabled set it returns (nil, nil) so wiring stays uniform.
func NewTracer(cfg TracerConfig) (*Tracer, error) {
	if cfg.Disabled {
		return nil, nil
	}
	cfg = cfg.withDefaults()
	t := &Tracer{cfg: cfg, rec: newRecorder(cfg.FlightSlots)}
	switch {
	case cfg.SampleRate < 0:
		t.headEvery = 0
	case cfg.SampleRate >= 1:
		t.headEvery = 1
	default:
		t.headEvery = uint64(1/cfg.SampleRate + 0.5)
	}
	if cfg.Path != "" {
		exp, err := newExporter(cfg.Path, cfg.MaxFileBytes, cfg.MaxFiles, cfg.QueueLen)
		if err != nil {
			return nil, err
		}
		t.exp = exp
	}
	return t, nil
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Recorder returns the flight recorder (nil on a nil tracer).
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// SlowThreshold returns the tail-keep latency bound.
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return t.cfg.SlowThreshold
}

// StartTrace opens a trace rooted at `name` with the given trace ID and
// start instant. A non-zero remoteParent (a span in the same trace on
// the calling node) is recorded as a link on the root span, keeping the
// in-file parent graph self-contained.
func (t *Tracer) StartTrace(traceID, name string, at time.Time, remoteParent uint64) (*TraceBuf, SpanHandle) {
	if t == nil {
		return nil, SpanHandle{}
	}
	t.started.Add(1)
	tb := &TraceBuf{traceID: traceID, spans: make([]SpanRec, 0, 12)}
	root := tb.start(0, name, at)
	if remoteParent != 0 {
		root.Link(traceID, remoteParent)
	}
	return tb, root
}

// StartRoot opens a background trace (WAL sync, checkpoint, retrain,
// resnapshot) with a fresh trace ID.
func (t *Tracer) StartRoot(name string) (*TraceBuf, SpanHandle) {
	if t == nil {
		return nil, SpanHandle{}
	}
	tb, root := t.StartTrace(NewTraceID(), name, time.Now(), 0)
	return tb, root
}

// keep applies the tail-sampling policy and returns whether to export,
// counting the (first applicable) reason.
func (t *Tracer) keep(dur time.Duration, errored bool) bool {
	switch {
	case errored:
		t.keptErr.Add(1)
	case dur >= t.cfg.SlowThreshold:
		t.keptSlow.Add(1)
	case t.headEvery > 0 && t.headSeq.Add(1)%t.headEvery == 0:
		t.keptHead.Add(1)
	default:
		return false
	}
	return true
}

// FinishRequest ends an HTTP trace: closes the root span, offers the
// trace to the flight recorder, and exports it when tail-sampling keeps
// it. The keep-nothing path does not allocate beyond the buffer already
// held.
func (t *Tracer) FinishRequest(tb *TraceBuf, root SpanHandle, name string, status int, dur time.Duration) {
	if t == nil || tb == nil {
		return
	}
	errored := status >= 500
	if errored {
		root.SetError("HTTP " + strconv.Itoa(status))
	}
	root.End()
	tb.mu.Lock()
	errored = errored || tb.errored
	t.spanDropped.Add(uint64(tb.dropped))
	tb.dropped = 0
	tb.mu.Unlock()
	t.rec.Offer(tb, name, status, dur, errored)
	if t.keep(dur, errored) && t.exp != nil {
		t.exp.enqueue(tb)
	}
}

// FinishRoot ends a background trace opened with StartRoot. A non-nil
// err marks it errored (always kept); duration comes from the root span.
func (t *Tracer) FinishRoot(tb *TraceBuf, root SpanHandle, err error) {
	if t == nil || tb == nil {
		return
	}
	root.EndErr(err)
	tb.mu.Lock()
	errored := tb.errored
	var dur time.Duration
	if len(tb.spans) > 0 {
		dur = time.Duration(tb.spans[0].End - tb.spans[0].Start)
	}
	t.spanDropped.Add(uint64(tb.dropped))
	tb.dropped = 0
	tb.mu.Unlock()
	if t.keep(dur, errored) && t.exp != nil {
		t.exp.enqueue(tb)
	}
}

// Flush blocks until every enqueued trace has been written to the
// export file. No-op without a file exporter.
func (t *Tracer) Flush() {
	if t != nil && t.exp != nil {
		t.exp.flush()
	}
}

// Close flushes and stops the exporter. Safe on nil and safe to call
// more than once.
func (t *Tracer) Close() error {
	if t == nil || t.exp == nil {
		return nil
	}
	return t.exp.close()
}

// Stats snapshots tracer activity counters.
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	st := TracerStats{
		Started:     t.started.Load(),
		KeptHead:    t.keptHead.Load(),
		KeptSlow:    t.keptSlow.Load(),
		KeptError:   t.keptErr.Load(),
		SpanDropped: t.spanDropped.Load(),
	}
	if t.exp != nil {
		st.Exported = t.exp.exported.Load()
		st.ExportDropped = t.exp.dropped.Load()
	}
	return st
}

// Register exposes tracer activity as trout_trace_* counters.
func (t *Tracer) Register(r *Registry) {
	if t == nil || r == nil {
		return
	}
	r.CounterFunc("trout_trace_started_total",
		"Traces begun (requests plus background roots).",
		func() float64 { return float64(t.started.Load()) })
	r.CounterVecFunc("trout_trace_kept_total",
		"Traces kept by tail sampling, by reason.",
		[]string{"reason"}, func(emit Emit) {
			emit(float64(t.keptErr.Load()), "error")
			emit(float64(t.keptSlow.Load()), "slow")
			emit(float64(t.keptHead.Load()), "head")
		})
	r.CounterFunc("trout_trace_exported_total",
		"Trace lines written to the JSONL export file.",
		func() float64 { return float64(t.Stats().Exported) })
	r.CounterFunc("trout_trace_export_dropped_total",
		"Kept traces lost to a full export queue or write errors.",
		func() float64 { return float64(t.Stats().ExportDropped) })
	r.CounterFunc("trout_trace_spans_dropped_total",
		"Spans dropped by the per-trace span cap.",
		func() float64 { return float64(t.spanDropped.Load()) })
	t.rec.register(r)
}

// --- context plumbing -------------------------------------------------

// AttachTree hooks a TraceBuf under a Spans recorder: every subsequent
// Observe also materializes as a child span of `parent` in the tree.
// The flat slice feeding the stage histogram is untouched.
func (sp *Spans) AttachTree(tb *TraceBuf, parent uint64) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.tb = tb
	sp.parent = parent
	sp.mu.Unlock()
}

// tree returns the attached buffer and parent span, if any.
func (sp *Spans) tree() (*TraceBuf, uint64) {
	if sp == nil {
		return nil, 0
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.tb, sp.parent
}

// StartSpan opens a child span under the request's root span (found via
// the context's Spans recorder). Returns a no-op handle outside a traced
// request.
func StartSpan(ctx context.Context, name string) SpanHandle {
	tb, parent := SpansFrom(ctx).tree()
	if tb == nil {
		return SpanHandle{}
	}
	return tb.start(parent, name, time.Now())
}
