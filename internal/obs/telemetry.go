package obs

import "log/slog"

// TrainTelemetry exports training-loop progress (per-head loss curves,
// gradient norms, learning rate, divergence rollbacks) as metrics and
// structured log lines. Methods are nil-safe so training code can emit
// unconditionally; the families register at construction so /metrics
// advertises them even before the first refit.
type TrainTelemetry struct {
	logger *slog.Logger

	loss      *GaugeVec
	valLoss   *GaugeVec
	gradNorm  *GaugeVec
	lr        *GaugeVec
	epochs    *CounterVec
	rollbacks *CounterVec
}

// NewTrainTelemetry registers the trout_train_* families on r. logger
// may be nil to disable the per-epoch log lines.
func NewTrainTelemetry(r *Registry, logger *slog.Logger) *TrainTelemetry {
	return &TrainTelemetry{
		logger: logger,
		loss: r.GaugeVec("trout_train_loss",
			"Training loss of the most recent epoch.", "head"),
		valLoss: r.GaugeVec("trout_train_val_loss",
			"Validation loss of the most recent epoch (0 when no holdout).", "head"),
		gradNorm: r.GaugeVec("trout_train_grad_norm",
			"Global gradient L2 norm of the most recent epoch's last step.", "head"),
		lr: r.GaugeVec("trout_train_learning_rate",
			"Learning rate in effect for the most recent epoch.", "head"),
		epochs: r.CounterVec("trout_train_epochs_total",
			"Training epochs completed since process start.", "head"),
		rollbacks: r.CounterVec("trout_train_rollbacks_total",
			"Divergence rollbacks (checkpoint restores) since process start.", "head"),
	}
}

// ObserveEpoch records one completed epoch for the named model head.
// Safe on a nil receiver.
func (t *TrainTelemetry) ObserveEpoch(head string, epoch int, loss, val, gradNorm, lr float64) {
	if t == nil {
		return
	}
	t.loss.Set(loss, head)
	t.valLoss.Set(val, head)
	t.gradNorm.Set(gradNorm, head)
	t.lr.Set(lr, head)
	t.epochs.Inc(head)
	if t.logger != nil {
		t.logger.Info("train_epoch",
			slog.String("head", head),
			slog.Int("epoch", epoch),
			slog.Float64("loss", loss),
			slog.Float64("val_loss", val),
			slog.Float64("grad_norm", gradNorm),
			slog.Float64("learning_rate", lr),
		)
	}
}

// ObserveRollback records a divergence rollback for the named head.
// Safe on a nil receiver.
func (t *TrainTelemetry) ObserveRollback(head string, epoch, events int, lr float64) {
	if t == nil {
		return
	}
	t.rollbacks.Inc(head)
	t.lr.Set(lr, head)
	if t.logger != nil {
		t.logger.Warn("train_rollback",
			slog.String("head", head),
			slog.Int("epoch", epoch),
			slog.Int("events", events),
			slog.Float64("learning_rate", lr),
		)
	}
}
