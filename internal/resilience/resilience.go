// Package resilience provides the fault-tolerance primitives behind the
// dashboard service and training stack: a tiered fallback prediction chain
// with per-tier hit counters, numeric sanity helpers, and HTTP middleware
// for panic recovery, per-request deadlines, and request-body limits.
//
// The design target is graceful degradation (Brown et al., arXiv:2204.13543):
// a queue-time predictor embedded in a long-running service must keep
// answering — with a cruder estimate and an honest tag — rather than fail
// when one layer of the model stack misbehaves.
package resilience

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Canonical tier names used by the prediction fallback chain. TierError is
// not a predictor: it counts requests for which every tier failed.
const (
	TierNN        = "nn"
	TierBaseline  = "baseline"
	TierHeuristic = "heuristic"
	TierError     = "error"
)

// Counters is a concurrency-safe counter keyed by tier name, exported on
// the service's /health endpoint so operators can alert on degradation.
type Counters struct {
	mu sync.RWMutex
	m  map[string]uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: map[string]uint64{}} }

// Inc adds one to the named tier's counter.
func (c *Counters) Inc(tier string) {
	c.mu.Lock()
	c.m[tier]++
	c.mu.Unlock()
}

// Get returns the named tier's count.
func (c *Counters) Get(tier string) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m[tier]
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]uint64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Degraded reports whether any tier other than primary (or the error
// pseudo-tier) has answered at least once.
func (c *Counters) Degraded(primary string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for k, v := range c.m {
		if k != primary && v > 0 {
			return true
		}
	}
	return false
}

// Step is one tier of a fallback chain.
type Step[T any] struct {
	// Tier names the step for counters and response tags.
	Tier string
	// Predict produces a candidate answer. A panic inside Predict is
	// recovered and treated as an error, so a corrupt model cannot take
	// the caller down.
	Predict func() (T, error)
	// Check vets the candidate (e.g. rejects NaN); nil accepts anything.
	Check func(T) error
}

// Run tries steps in order and returns the first answer whose Predict
// succeeds (no error, no panic) and whose Check passes, together with the
// tier that produced it. When counters is non-nil the answering tier is
// recorded — or TierError when every step fails, in which case the last
// error is returned.
func Run[T any](steps []Step[T], counters *Counters) (T, string, error) {
	var zero T
	var lastErr error
	for _, s := range steps {
		v, err := safePredict(s.Predict)
		if err == nil && s.Check != nil {
			err = s.Check(v)
		}
		if err != nil {
			lastErr = fmt.Errorf("resilience: tier %s: %w", s.Tier, err)
			continue
		}
		if counters != nil {
			counters.Inc(s.Tier)
		}
		return v, s.Tier, nil
	}
	if counters != nil {
		counters.Inc(TierError)
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("resilience: empty fallback chain")
	}
	return zero, TierError, lastErr
}

// safePredict invokes fn, converting a panic into an error.
func safePredict[T any](fn func() (T, error)) (v T, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("predictor panicked: %v", p)
		}
	}()
	if fn == nil {
		return v, fmt.Errorf("nil predictor")
	}
	return fn()
}

// Finite reports whether every value is finite (no NaN or ±Inf).
func Finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Median returns the median of xs (0 for an empty slice); xs is not
// modified. It backs the partition-median heuristic tier.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}
