// Package tscv implements the time-series cross-validation the paper trains
// with (Fig 3): k expanding-window folds over time-ordered samples, each
// testing on the slice of data immediately after its training window. It
// also provides the shuffled split used to demonstrate the burst-leakage
// problem (§III) and the "most recent fraction" holdout used for the
// classifier.
package tscv

import (
	"fmt"
	"math/rand"
)

// Fold is one train/test split. Indices refer to the caller's time-ordered
// sample slice.
type Fold struct {
	Train []int
	Test  []int
}

// Split produces k expanding-window folds over n time-ordered samples with
// a test window of testFraction of the data (the paper: 5 folds, test size
// one sixth). Fold i trains on everything before its test window, and test
// windows slide forward so fold k's window ends at the last sample.
func Split(n, k int, testFraction float64) ([]Fold, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tscv: n must be positive")
	}
	if k <= 0 {
		return nil, fmt.Errorf("tscv: k must be positive")
	}
	if testFraction <= 0 || testFraction >= 1 {
		return nil, fmt.Errorf("tscv: testFraction must be in (0,1)")
	}
	testSize := int(float64(n) * testFraction)
	if testSize < 1 {
		return nil, fmt.Errorf("tscv: test window is empty for n=%d fraction=%v", n, testFraction)
	}
	// First training window: what remains after laying k sliding test
	// windows end-to-end... the windows advance by `step` so that the
	// last window ends at n.
	minTrain := n - k*testSize
	step := testSize
	if minTrain < 1 {
		// Overlap test windows when data is scarce.
		if n-testSize < k {
			return nil, fmt.Errorf("tscv: not enough samples (n=%d) for k=%d folds", n, k)
		}
		minTrain = (n - testSize) / (k + 1)
		if minTrain < 1 {
			minTrain = 1
		}
		step = (n - testSize - minTrain) / k
		if step < 1 {
			step = 1
		}
	}
	folds := make([]Fold, 0, k)
	for i := 0; i < k; i++ {
		var trainEnd int
		if i == k-1 {
			trainEnd = n - testSize
		} else {
			trainEnd = minTrain + i*step
			if trainEnd > n-testSize {
				trainEnd = n - testSize
			}
		}
		testEnd := trainEnd + testSize
		if testEnd > n {
			testEnd = n
		}
		f := Fold{Train: indexRange(0, trainEnd), Test: indexRange(trainEnd, testEnd)}
		folds = append(folds, f)
	}
	return folds, nil
}

// HoldoutRecent returns a single split with the most recent fraction of the
// data as test — the paper's classifier evaluation ("the most recent 20% of
// jobs ... used as validation and test data").
func HoldoutRecent(n int, fraction float64) (Fold, error) {
	if n <= 1 {
		return Fold{}, fmt.Errorf("tscv: need at least 2 samples")
	}
	if fraction <= 0 || fraction >= 1 {
		return Fold{}, fmt.Errorf("tscv: fraction must be in (0,1)")
	}
	cut := n - int(float64(n)*fraction)
	if cut < 1 {
		cut = 1
	}
	if cut >= n {
		cut = n - 1
	}
	return Fold{Train: indexRange(0, cut), Test: indexRange(cut, n)}, nil
}

// ShuffledSplit is the leakage-prone split the paper warns about: samples
// are shuffled before the train/test cut, so burst siblings straddle the
// boundary and inflate apparent accuracy roughly two-fold.
func ShuffledSplit(n int, testFraction float64, seed int64) (Fold, error) {
	if n <= 1 {
		return Fold{}, fmt.Errorf("tscv: need at least 2 samples")
	}
	if testFraction <= 0 || testFraction >= 1 {
		return Fold{}, fmt.Errorf("tscv: testFraction must be in (0,1)")
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	testSize := int(float64(n) * testFraction)
	if testSize < 1 {
		testSize = 1
	}
	cut := n - testSize
	return Fold{Train: perm[:cut], Test: perm[cut:]}, nil
}

func indexRange(lo, hi int) []int {
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	return idx
}
