package replication

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/livestate"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// FollowerConfig wires a pull loop against a leader.
type FollowerConfig struct {
	// LeaderURL is the leader's base URL (scheme://host:port), no trailing
	// slash required.
	LeaderURL string
	// Store is the local replica the WAL replays into. Typically
	// memory-only or pointed at its own -wal-dir (a follower's local WAL
	// makes its own restarts cheap).
	Store *livestate.Store
	// Client overrides the HTTP client. Nil builds one with no global
	// timeout (long-polls are bounded per-request via context).
	Client *http.Client
	// Retry shapes the reconnect backoff. The zero value is the resilience
	// default (100ms → 10s, full jitter, unlimited attempts).
	Retry resilience.Policy
	// PollWait is the long-poll window asked of the leader. 0 means 25s.
	PollWait time.Duration
	// MaxBatchBytes caps each WAL fetch. 0 accepts the leader default.
	MaxBatchBytes int64
	// LagEvents is the replication-lag threshold (in events) beyond which
	// the follower reports itself degraded / not ready. 0 means 4096.
	LagEvents uint64
	// StaleAfter marks the follower degraded when the leader has not been
	// reachable for this long. 0 means 30s.
	StaleAfter time.Duration
	// Logger for replication lifecycle events. Nil discards.
	Logger *slog.Logger
	// Tracer, when set, records each full resnapshot as a root trace
	// (resnapshots are rare, expensive, and worth a flight-record). Nil
	// disables.
	Tracer *obs.Tracer
}

// FollowerStats is a point-in-time view of the pull loop, consumed by the
// /metrics collectors and /health.
type FollowerStats struct {
	LeaderURL      string
	LocalLSN       uint64
	LeaderLSN      uint64
	LagEvents      uint64
	LagSeconds     float64
	Gen            uint64
	CaughtUp       bool // first catch-up achieved (readiness latch)
	Fetches        uint64
	FetchErrors    uint64
	RecordsApplied uint64
	BytesApplied   uint64
	Resnapshots    uint64
	ApplyRejects   uint64 // engine-level rejections (counted, skipped)
	LastError      string
	LastContact    time.Time
}

// Follower pulls the leader's WAL into a local Store. Run drives the loop;
// Err answers readiness/health probes.
type Follower struct {
	cfg    FollowerConfig
	client *http.Client
	log    *slog.Logger

	mu           sync.Mutex
	leaderLSN    uint64
	leaderGen    uint64
	haveGen      bool
	caughtUp     bool
	lastContact  time.Time
	lastCaughtUp time.Time
	started      time.Time
	lastErr      string

	fetches        uint64
	fetchErrors    uint64
	recordsApplied uint64
	bytesApplied   uint64
	resnapshots    uint64
	applyRejects   uint64
}

// NewFollower validates cfg and builds the pull loop (not yet running).
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.LeaderURL == "" {
		return nil, errors.New("replication: follower needs a leader URL")
	}
	if cfg.Store == nil {
		return nil, errors.New("replication: follower needs a store")
	}
	if cfg.PollWait == 0 {
		cfg.PollWait = 25 * time.Second
	}
	if cfg.LagEvents == 0 {
		cfg.LagEvents = 4096
	}
	if cfg.StaleAfter == 0 {
		cfg.StaleAfter = 30 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	f := &Follower{cfg: cfg, client: client, log: cfg.Logger}
	f.started = time.Now()
	return f, nil
}

// Run pulls until ctx is canceled. Transient leader failures back off with
// jitter (resilience.Retry) and never kill the loop; Run only returns
// ctx.Err().
func (f *Follower) Run(ctx context.Context) error {
	p := f.cfg.Retry
	if p.OnRetry == nil {
		p.OnRetry = func(attempt int, err error, sleep time.Duration) {
			f.noteError(err)
			f.log.Debug("replication retry", "attempt", attempt, "sleep", sleep, "err", err)
		}
	}
	for {
		err := resilience.Retry(ctx, p, f.syncOnce)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err != nil {
			// Permanent errors (e.g. a corrupt snapshot) should not spin hot;
			// log, pause one backoff step, and start a fresh Retry cycle.
			f.noteError(err)
			f.log.Warn("replication sync failed; restarting pull loop", "err", err)
			t := time.NewTimer(p.Sleep(1))
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
	}
}

func (f *Follower) noteError(err error) {
	f.mu.Lock()
	f.fetchErrors++
	f.lastErr = err.Error()
	f.mu.Unlock()
}

// syncOnce performs one WAL fetch (possibly long-polling) and applies what
// it gets. It is the unit resilience.Retry re-runs on failure.
func (f *Follower) syncOnce(ctx context.Context) error {
	f.mu.Lock()
	f.fetches++
	f.mu.Unlock()

	from := f.cfg.Store.Metrics().LSN
	// Until the first catch-up, fetch without parking: a quiet leader whose
	// state lives entirely in its checkpoint (nothing in the WAL) would
	// otherwise hold the initial fetch for the whole long-poll window before
	// the follower could even see the generation header and bootstrap.
	wait := f.cfg.PollWait
	f.mu.Lock()
	if !f.caughtUp {
		wait = 0
	}
	f.mu.Unlock()
	url := fmt.Sprintf("%s/replication/wal?from=%d&wait=%s",
		f.cfg.LeaderURL, from, wait)
	if f.cfg.MaxBatchBytes > 0 {
		url += fmt.Sprintf("&max_bytes=%d", f.cfg.MaxBatchBytes)
	}
	// Bound the request a comfortable margin past the long-poll window so a
	// hung leader cannot wedge the loop.
	rctx, cancel := context.WithTimeout(ctx, f.cfg.PollWait+15*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, url, nil)
	if err != nil {
		return resilience.Permanent(err)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("replication: fetch: %w", err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()

	leaderLSN, _ := strconv.ParseUint(resp.Header.Get(HeaderLeaderLSN), 10, 64)
	leaderGen, genOK := parseGen(resp.Header.Get(HeaderStateGen))

	switch resp.StatusCode {
	case http.StatusOK, http.StatusNoContent:
	case http.StatusConflict, http.StatusGone:
		// Diverged or fell behind retention: full re-snapshot.
		f.log.Info("replication: leader signalled divergence", "status", resp.StatusCode, "from", from)
		return f.resnapshot(ctx)
	default:
		return fmt.Errorf("replication: leader returned %d", resp.StatusCode)
	}

	// A state-generation mismatch means the leader's engine was replaced
	// wholesale (reseed/restore) without WAL records: replayed history is
	// void, start over from a snapshot. Comparing against the local store's
	// generation — which RestoreSnapshot keeps in lockstep with the leader —
	// also covers the first contact with a leader that was seeded before we
	// connected (its state lives in the checkpoint, not the WAL).
	if genOK && leaderGen != f.cfg.Store.Gen() {
		f.log.Info("replication: state generation changed",
			"local", f.cfg.Store.Gen(), "leader", leaderGen)
		return f.resnapshot(ctx)
	}

	if resp.StatusCode == http.StatusOK {
		if err := f.applyStream(resp.Body); err != nil {
			var gap *livestate.LSNGapError
			if errors.As(err, &gap) {
				f.log.Info("replication: LSN gap in stream", "have", gap.Have, "got", gap.Got)
				return f.resnapshot(ctx)
			}
			return err
		}
		if err := f.cfg.Store.Sync(); err != nil {
			return fmt.Errorf("replication: local sync: %w", err)
		}
	}

	f.observe(leaderLSN, leaderGen, genOK)
	return nil
}

func parseGen(s string) (uint64, bool) {
	if s == "" {
		return 0, false
	}
	g, err := strconv.ParseUint(s, 10, 64)
	return g, err == nil
}

// applyStream replays one WAL response body into the local store.
func (f *Follower) applyStream(r io.Reader) error {
	sc := livestate.NewWALScanner(r)
	cur := f.cfg.Store.Metrics().LSN
	var records uint64
	for {
		lsn, ev, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("replication: stream decode: %w", err)
		}
		if lsn <= cur {
			continue // overlap from a retried fetch; already applied
		}
		if err := f.cfg.Store.ApplyAt(lsn, ev); err != nil {
			var gap *livestate.LSNGapError
			if errors.As(err, &gap) {
				return err
			}
			// Engine-level rejection (bad event shipped by a buggy leader):
			// the record is in our WAL position now, count it and move on
			// rather than wedging replication forever.
			f.mu.Lock()
			f.applyRejects++
			f.mu.Unlock()
		}
		cur = lsn
		records++
	}
	f.mu.Lock()
	f.recordsApplied += records
	f.bytesApplied += uint64(sc.Bytes())
	f.mu.Unlock()
	return nil
}

// resnapshot pulls the full engine state and replaces the local replica.
func (f *Follower) resnapshot(ctx context.Context) (err error) {
	tb, root := f.cfg.Tracer.StartRoot("resnapshot")
	defer func() { f.cfg.Tracer.FinishRoot(tb, root, err) }()
	rctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet,
		f.cfg.LeaderURL+"/replication/snapshot", nil)
	if err != nil {
		return resilience.Permanent(err)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("replication: snapshot fetch: %w", err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replication: snapshot fetch returned %d", resp.StatusCode)
	}
	lsn, err := f.cfg.Store.RestoreSnapshot(resp.Body)
	if err != nil {
		return fmt.Errorf("replication: snapshot restore: %w", err)
	}
	leaderLSN, _ := strconv.ParseUint(resp.Header.Get(HeaderLeaderLSN), 10, 64)
	gen := f.cfg.Store.Gen()

	root.SetAttrInt("lsn", int64(lsn))
	root.SetAttrInt("gen", int64(gen))

	f.mu.Lock()
	f.resnapshots++
	f.leaderGen = gen
	f.haveGen = true
	f.mu.Unlock()
	f.log.Info("replication: restored snapshot", "lsn", lsn, "gen", gen)
	f.observe(leaderLSN, gen, true)
	return nil
}

// observe folds a successful leader contact into the lag bookkeeping.
func (f *Follower) observe(leaderLSN, leaderGen uint64, genOK bool) {
	local := f.cfg.Store.Metrics().LSN
	now := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lastContact = now
	f.lastErr = ""
	if genOK && !f.haveGen {
		f.leaderGen = leaderGen
		f.haveGen = true
	}
	if leaderLSN > f.leaderLSN || local >= leaderLSN {
		f.leaderLSN = leaderLSN
	}
	if local >= f.leaderLSN {
		f.caughtUp = true
		f.lastCaughtUp = now
	}
}

// Stats snapshots the pull loop for metrics and /health.
func (f *Follower) Stats() FollowerStats {
	local := f.cfg.Store.Metrics().LSN
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FollowerStats{
		LeaderURL:      f.cfg.LeaderURL,
		LocalLSN:       local,
		LeaderLSN:      f.leaderLSN,
		Gen:            f.leaderGen,
		CaughtUp:       f.caughtUp,
		Fetches:        f.fetches,
		FetchErrors:    f.fetchErrors,
		RecordsApplied: f.recordsApplied,
		BytesApplied:   f.bytesApplied,
		Resnapshots:    f.resnapshots,
		ApplyRejects:   f.applyRejects,
		LastError:      f.lastErr,
		LastContact:    f.lastContact,
	}
	if f.leaderLSN > local {
		st.LagEvents = f.leaderLSN - local
	}
	if st.LagEvents > 0 {
		since := f.lastCaughtUp
		if since.IsZero() {
			since = f.started
		}
		st.LagSeconds = time.Since(since).Seconds()
	}
	return st
}

// Err reports why the follower is not fit to serve: nil when healthy,
// otherwise the reason for /ready's 503 and /health's "degraded".
func (f *Follower) Err() error {
	st := f.Stats()
	if !st.CaughtUp {
		return errors.New("replication: initial catch-up in progress")
	}
	if st.LagEvents > f.cfg.LagEvents {
		return fmt.Errorf("replication: lag %d events exceeds threshold %d", st.LagEvents, f.cfg.LagEvents)
	}
	f.mu.Lock()
	last := f.lastContact
	f.mu.Unlock()
	if !last.IsZero() && time.Since(last) > f.cfg.StaleAfter {
		return fmt.Errorf("replication: no leader contact for %s", time.Since(last).Round(time.Second))
	}
	return nil
}
