// End-to-end HTTP serving benchmarks feeding BENCH_serving.json via
// `make bench-json`: the full /predict request path — decode, snapshot
// resolution through the shared cache, tiered prediction, zero-alloc
// encode — driven in-process (no sockets) against a warm engine holding
// the 50k-job bench trace mid-stream. BenchmarkHTTPPredictParallel is the
// tentpole number: concurrent requests at one instant share a single
// cached snapshot extraction instead of each paying O(log n + k).
package trout_test

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	trout "repro"
	"repro/internal/livestate"
)

var (
	svcBenchOnce sync.Once
	svcBenchH    http.Handler
	svcBenchBody []byte
	svcBenchErr  error
)

// servingBenchHandler builds one Service for all serving benchmarks: the
// bench bundle on the float32 path over a store replayed to the same
// mid-stream instant livestateBenchSetup uses (large pending/running
// sets — the expensive extraction the snapshot cache amortizes).
func servingBenchHandler(b *testing.B) (http.Handler, []byte) {
	b.Helper()
	livestateBenchSetup(b)
	e := benchExperiment(b)
	svcBenchOnce.Do(func() {
		m, _, err := trout.TrainHoldout(e.Data, e.Pipeline.Model, 0.2)
		if err != nil {
			svcBenchErr = err
			return
		}
		bundle, err := trout.NewBundle(m, e.Data, e.Cluster)
		if err != nil {
			svcBenchErr = err
			return
		}
		store, err := livestate.OpenStore(livestate.StoreOptions{})
		if err != nil {
			svcBenchErr = err
			return
		}
		evs := livestate.EventsFromTrace(lsTrace)
		cut := evs[len(evs)/2].Time
		for i := range evs {
			if evs[i].Time > cut {
				break
			}
			if err := store.Apply(evs[i]); err != nil {
				svcBenchErr = err
				return
			}
		}
		svc, err := trout.NewServiceWith(bundle, lsTrace, trout.ServiceConfig{
			Live: store, FastInference: true,
		})
		if err != nil {
			svcBenchErr = err
			return
		}
		svcBenchH = svc.Handler()
		svcBenchBody = fmt.Appendf(nil,
			`{"at":%d,"job":{"user":3,"partition":"shared","req_cpus":8,"req_mem_gb":16,"req_nodes":1,"time_limit":7200,"priority":3000}}`,
			store.Engine().Now())
	})
	if svcBenchErr != nil {
		b.Fatal(svcBenchErr)
	}
	return svcBenchH, svcBenchBody
}

func doBenchPredict(b *testing.B, h http.Handler, body []byte) {
	req := httptest.NewRequest(http.MethodPost, "/predict", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("predict: HTTP %d: %s", rec.Code, rec.Body.String())
	}
}

// BenchmarkHTTPPredict is one full POST /predict round trip, sequentially.
func BenchmarkHTTPPredict(b *testing.B) {
	h, body := servingBenchHandler(b)
	doBenchPredict(b, h, body) // warm the snapshot cache and buffer pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doBenchPredict(b, h, body)
	}
}

// BenchmarkHTTPPredictParallel hammers POST /predict from all procs at one
// instant — the acceptance number (≥3× the pre-cache baseline at
// GOMAXPROCS≥4): every request after the first shares the cached snapshot
// instead of re-extracting pending/running/history under the engine lock.
func BenchmarkHTTPPredictParallel(b *testing.B) {
	h, body := servingBenchHandler(b)
	doBenchPredict(b, h, body)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			doBenchPredict(b, h, body)
		}
	})
}

// BenchmarkHTTPPredictBatch64 is the 64-job POST /predict/batch round
// trip: one snapshot resolution, one mini-batched NN pass, one encode.
func BenchmarkHTTPPredictBatch64(b *testing.B) {
	h, single := servingBenchHandler(b)
	// Reuse the single-predict instant/job; 64 copies in one batch body.
	var buf bytes.Buffer
	var at int64
	if _, err := fmt.Sscanf(string(single), `{"at":%d`, &at); err != nil {
		b.Fatal(err)
	}
	fmt.Fprintf(&buf, `{"at":%d,"jobs":[`, at)
	for i := 0; i < 64; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf,
			`{"user":%d,"partition":"shared","req_cpus":8,"req_mem_gb":16,"req_nodes":1,"time_limit":7200,"priority":3000}`,
			i%16)
	}
	buf.WriteString("]}")
	body := buf.Bytes()
	req := httptest.NewRequest(http.MethodPost, "/predict/batch", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("batch: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/predict/batch", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("batch: HTTP %d", rec.Code)
		}
	}
}
