// Package intervaltree implements an augmented self-balancing interval tree
// used for the paper's feature engineering: given every job's
// [eligible, start) pending interval and [start, end) running interval,
// queries of the form "which jobs overlap instant t" drive the Table II
// partition-state features. The paper builds trees over chunks of 100 000
// jobs with a 10 000-job overlap and merges them; BuildChunked reproduces
// that construction. A naive linear scanner is included for differential
// testing and for the interval-tree-vs-naive ablation (A6).
package intervaltree

import (
	"fmt"
	"sort"
)

// Interval is a half-open interval [Lo, Hi) tagged with the index of the job
// it belongs to. Hi must be >= Lo; zero-length intervals never match a stab.
type Interval struct {
	Lo, Hi int64
	ID     int
}

// Contains reports whether t lies inside the half-open interval.
func (iv Interval) Contains(t int64) bool { return iv.Lo <= t && t < iv.Hi }

// Overlaps reports whether [lo,hi) intersects the interval.
func (iv Interval) Overlaps(lo, hi int64) bool { return iv.Lo < hi && lo < iv.Hi }

// node is an AVL node augmented with the subtree's maximum Hi endpoint.
type node struct {
	iv          Interval
	maxHi       int64
	height      int
	left, right *node
}

// Tree is an AVL-balanced interval tree. The zero value is an empty tree.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Size returns the number of stored intervals.
func (t *Tree) Size() int { return t.size }

// Insert adds an interval. Duplicate intervals (even with the same ID) are
// allowed; the tree is a multiset.
func (t *Tree) Insert(iv Interval) {
	if iv.Hi < iv.Lo {
		panic(fmt.Sprintf("intervaltree: inverted interval [%d,%d)", iv.Lo, iv.Hi))
	}
	t.root = insert(t.root, iv)
	t.size++
}

func height(n *node) int {
	if n == nil {
		return 0
	}
	return n.height
}

func maxHi(n *node) int64 {
	if n == nil {
		return -1 << 62
	}
	return n.maxHi
}

func (n *node) update() {
	n.height = 1 + max(height(n.left), height(n.right))
	n.maxHi = n.iv.Hi
	if l := maxHi(n.left); l > n.maxHi {
		n.maxHi = l
	}
	if r := maxHi(n.right); r > n.maxHi {
		n.maxHi = r
	}
}

func rotateRight(y *node) *node {
	x := y.left
	y.left = x.right
	x.right = y
	y.update()
	x.update()
	return x
}

func rotateLeft(x *node) *node {
	y := x.right
	x.right = y.left
	y.left = x
	x.update()
	y.update()
	return y
}

func rebalance(n *node) *node {
	n.update()
	bf := height(n.left) - height(n.right)
	switch {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

// less orders intervals by (Lo, Hi, ID) so the tree shape is deterministic.
func less(a, b Interval) bool {
	if a.Lo != b.Lo {
		return a.Lo < b.Lo
	}
	if a.Hi != b.Hi {
		return a.Hi < b.Hi
	}
	return a.ID < b.ID
}

func insert(n *node, iv Interval) *node {
	if n == nil {
		nd := &node{iv: iv, height: 1, maxHi: iv.Hi}
		return nd
	}
	if less(iv, n.iv) {
		n.left = insert(n.left, iv)
	} else {
		n.right = insert(n.right, iv)
	}
	return rebalance(n)
}

// Stab appends to dst all intervals containing instant t and returns it.
// Results are in no particular order.
func (t *Tree) Stab(dst []Interval, at int64) []Interval {
	return stab(t.root, at, dst)
}

func stab(n *node, at int64, dst []Interval) []Interval {
	if n == nil || n.maxHi <= at {
		// No interval in this subtree extends past `at`.
		return dst
	}
	dst = stab(n.left, at, dst)
	if n.iv.Contains(at) {
		dst = append(dst, n.iv)
	}
	if n.iv.Lo <= at {
		dst = stab(n.right, at, dst)
	}
	return dst
}

// Overlap appends to dst all intervals intersecting [lo, hi) and returns it.
func (t *Tree) Overlap(dst []Interval, lo, hi int64) []Interval {
	return overlap(t.root, lo, hi, dst)
}

func overlap(n *node, lo, hi int64, dst []Interval) []Interval {
	if n == nil || n.maxHi <= lo {
		return dst
	}
	dst = overlap(n.left, lo, hi, dst)
	if n.iv.Overlaps(lo, hi) {
		dst = append(dst, n.iv)
	}
	if n.iv.Lo < hi {
		dst = overlap(n.right, lo, hi, dst)
	}
	return dst
}

// StabVisit calls visit for each interval containing t, avoiding the
// allocation of a result slice — the hot path of feature engineering.
func (t *Tree) StabVisit(at int64, visit func(Interval)) {
	stabVisit(t.root, at, visit)
}

func stabVisit(n *node, at int64, visit func(Interval)) {
	if n == nil || n.maxHi <= at {
		return
	}
	stabVisit(n.left, at, visit)
	if n.iv.Contains(at) {
		visit(n.iv)
	}
	if n.iv.Lo <= at {
		stabVisit(n.right, at, visit)
	}
}

// All appends every interval (in sorted order) to dst and returns it.
func (t *Tree) All(dst []Interval) []Interval {
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		walk(n.left)
		dst = append(dst, n.iv)
		walk(n.right)
	}
	walk(t.root)
	return dst
}

// Height returns the root height (for balance tests).
func (t *Tree) Height() int { return height(t.root) }

// Build constructs a balanced tree from a slice of intervals in O(n log n).
func Build(ivs []Interval) *Tree {
	sorted := append([]Interval(nil), ivs...)
	sort.Slice(sorted, func(i, j int) bool { return less(sorted[i], sorted[j]) })
	t := New()
	t.root = buildSorted(sorted)
	t.size = len(sorted)
	return t
}

// buildSorted builds a perfectly balanced subtree from sorted intervals.
func buildSorted(ivs []Interval) *node {
	if len(ivs) == 0 {
		return nil
	}
	mid := len(ivs) / 2
	n := &node{iv: ivs[mid]}
	n.left = buildSorted(ivs[:mid])
	n.right = buildSorted(ivs[mid+1:])
	n.update()
	return n
}

// BuildChunked reproduces the paper's construction: jobs are split into
// chunks of chunkSize with an overlap of `overlapN` jobs between consecutive
// chunks, one tree is built per chunk, and the trees are merged back
// together (deduplicating the overlap region). The paper used chunkSize
// 100 000 and overlap 10 000 to bound per-tree build cost. The merged result
// is semantically identical to Build(ivs).
func BuildChunked(ivs []Interval, chunkSize, overlapN int) *Tree {
	if chunkSize <= 0 {
		panic("intervaltree: chunkSize must be positive")
	}
	if overlapN < 0 || overlapN >= chunkSize {
		panic("intervaltree: overlap must be in [0, chunkSize)")
	}
	if len(ivs) <= chunkSize {
		return Build(ivs)
	}
	var chunks []*Tree
	step := chunkSize - overlapN
	for start := 0; start < len(ivs); start += step {
		end := start + chunkSize
		if end > len(ivs) {
			end = len(ivs)
		}
		chunks = append(chunks, Build(ivs[start:end]))
		if end == len(ivs) {
			break
		}
	}
	return Merge(chunks...)
}

// Merge combines trees into one, dropping duplicate (Lo, Hi, ID) entries
// that arise from chunk overlap.
func Merge(trees ...*Tree) *Tree {
	var all []Interval
	for _, t := range trees {
		all = t.All(all)
	}
	sort.Slice(all, func(i, j int) bool { return less(all[i], all[j]) })
	dedup := all[:0]
	for i, iv := range all {
		if i > 0 && iv == all[i-1] {
			continue
		}
		dedup = append(dedup, iv)
	}
	out := New()
	out.root = buildSorted(dedup)
	out.size = len(dedup)
	return out
}

// NaiveScan is the O(n)-per-query baseline the paper's interval trees
// replace: a flat slice scanned on every stab.
type NaiveScan struct{ Intervals []Interval }

// Stab appends all intervals containing t.
func (s *NaiveScan) Stab(dst []Interval, at int64) []Interval {
	for _, iv := range s.Intervals {
		if iv.Contains(at) {
			dst = append(dst, iv)
		}
	}
	return dst
}

// StabVisit calls visit for each interval containing t.
func (s *NaiveScan) StabVisit(at int64, visit func(Interval)) {
	for _, iv := range s.Intervals {
		if iv.Contains(at) {
			visit(iv)
		}
	}
}

// Stabber is the query interface shared by Tree and NaiveScan so feature
// engineering can be benchmarked against both backends.
type Stabber interface {
	StabVisit(at int64, visit func(Interval))
}

var (
	_ Stabber = (*Tree)(nil)
	_ Stabber = (*NaiveScan)(nil)
)
