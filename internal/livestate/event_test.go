package livestate

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/trace"
)

func mkJob(id, user int, part string, submit, eligible, start, end int64) trace.Job {
	return trace.Job{
		ID: id, User: user, Partition: part, State: trace.StateCompleted,
		Submit: submit, Eligible: eligible, Start: start, End: end,
		ReqCPUs: 4, ReqMemGB: 8, ReqNodes: 1, TimeLimit: 3600, Priority: 1000,
	}
}

func TestDecodeEventValidation(t *testing.T) {
	cases := []struct {
		name string
		line string
		ok   bool
	}{
		{"submit ok", `{"type":"submit","time":100,"job":{"id":1,"partition":"shared"}}`, true},
		{"submit no job", `{"type":"submit","time":100}`, false},
		{"submit no partition", `{"type":"submit","time":100,"job":{"id":1}}`, false},
		{"start ok", `{"type":"start","time":100,"job_id":1}`, true},
		{"start no id", `{"type":"start","time":100}`, false},
		{"zero time", `{"type":"end","time":0,"job_id":1}`, false},
		{"negative time", `{"type":"end","time":-5,"job_id":1}`, false},
		{"unknown type", `{"type":"requeue","time":100,"job_id":1}`, false},
		{"not json", `{nope`, false},
		{"end with state", `{"type":"end","time":9,"job_id":2,"state":"FAILED"}`, true},
	}
	for _, c := range cases {
		_, err := DecodeEvent([]byte(c.line))
		if (err == nil) != c.ok {
			t.Errorf("%s: err=%v want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestEventsFromTraceOrderAndShape(t *testing.T) {
	tr := &trace.Trace{Jobs: []trace.Job{
		mkJob(1, 7, "shared", 100, 100, 200, 300),
		mkJob(2, 7, "shared", 150, 160, 0, 0), // still pending: no start/end
		func() trace.Job {
			j := mkJob(3, 8, "gpu", 120, 130, 0, 180) // cancelled before start
			j.State = trace.StateCancelled
			return j
		}(),
		func() trace.Job {
			j := mkJob(4, 8, "gpu", 110, 115, 140, 0) // still running: no end
			return j
		}(),
	}}
	evs := EventsFromTrace(tr)
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatalf("events out of order at %d: %d after %d", i, evs[i].Time, evs[i-1].Time)
		}
	}
	count := map[EventType]int{}
	for i := range evs {
		count[evs[i].Type]++
		if evs[i].Type == EventSubmit {
			j := evs[i].Job
			if j.Eligible != 0 || j.Start != 0 || j.End != 0 || j.State != "" {
				t.Fatalf("submit payload leaks outcome fields: %+v", j)
			}
		}
	}
	want := map[EventType]int{EventSubmit: 4, EventEligible: 4, EventStart: 2, EventEnd: 1, EventCancel: 1}
	if !reflect.DeepEqual(count, want) {
		t.Fatalf("event counts %v, want %v", count, want)
	}
}

func TestWriteEventsRoundtrip(t *testing.T) {
	tr := &trace.Trace{Jobs: []trace.Job{mkJob(1, 7, "shared", 100, 100, 200, 300)}}
	evs := EventsFromTrace(tr)
	var buf bytes.Buffer
	if err := WriteEvents(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var back []Event
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		ev, err := DecodeEvent(line)
		if err != nil {
			t.Fatalf("decode %q: %v", line, err)
		}
		back = append(back, ev)
	}
	if !reflect.DeepEqual(evs, back) {
		t.Fatalf("roundtrip mismatch:\n%+v\n%+v", evs, back)
	}
}

func TestPhaseAtOpenIntervals(t *testing.T) {
	pendingJob := mkJob(1, 1, "shared", 100, 110, 0, 0)
	runningJob := mkJob(2, 1, "shared", 100, 110, 120, 0)
	doneJob := mkJob(3, 1, "shared", 100, 110, 120, 130)
	cancelled := mkJob(4, 1, "shared", 100, 110, 0, 125)
	cases := []struct {
		j    trace.Job
		at   int64
		want Phase
	}{
		{pendingJob, 99, PhaseNone},
		{pendingJob, 105, PhaseSubmitted},
		{pendingJob, 110, PhasePending},
		{pendingJob, 1e9, PhasePending}, // open interval: pending forever until events say otherwise
		{runningJob, 115, PhasePending},
		{runningJob, 120, PhaseRunning},
		{runningJob, 1e9, PhaseRunning},
		{doneJob, 125, PhaseRunning},
		{doneJob, 130, PhaseDone},
		{cancelled, 120, PhasePending},
		{cancelled, 125, PhaseDone},
	}
	for i, c := range cases {
		if got := PhaseAt(&c.j, c.at); got != c.want {
			t.Errorf("case %d: PhaseAt(job %d, %d) = %d, want %d", i, c.j.ID, c.at, got, c.want)
		}
	}
}

// FuzzDecodeEvent asserts the decoder never panics and that every accepted
// event re-encodes to something that decodes to the same value.
func FuzzDecodeEvent(f *testing.F) {
	f.Add([]byte(`{"type":"submit","time":100,"job":{"id":1,"partition":"shared","req_cpus":4}}`))
	f.Add([]byte(`{"type":"eligible","time":101,"job_id":1}`))
	f.Add([]byte(`{"type":"start","time":102,"job_id":1}`))
	f.Add([]byte(`{"type":"end","time":103,"job_id":1,"state":"TIMEOUT"}`))
	f.Add([]byte(`{"type":"cancel","time":104,"job_id":1}`))
	f.Add([]byte(`{"type":"submit","time":-1}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, line []byte) {
		ev, err := DecodeEvent(line)
		if err != nil {
			return
		}
		out, err := json.Marshal(&ev)
		if err != nil {
			t.Fatalf("accepted event fails to marshal: %v", err)
		}
		ev2, err := DecodeEvent(out)
		if err != nil {
			t.Fatalf("re-encoded event rejected: %v (from %q)", err, out)
		}
		if !reflect.DeepEqual(ev, ev2) {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", ev, ev2)
		}
		// Accepted events must always be applicable without panicking.
		_ = NewEngine().ApplyEvent(ev)
	})
}
