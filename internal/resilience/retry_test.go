package resilience

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	var attempts []int
	p := Policy{
		InitialInterval: time.Microsecond,
		MaxInterval:     10 * time.Microsecond,
		OnRetry:         func(attempt int, err error, sleep time.Duration) { attempts = append(attempts, attempt) },
	}
	err := Retry(context.Background(), p, func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if len(attempts) != 2 || attempts[0] != 1 || attempts[1] != 2 {
		t.Fatalf("OnRetry attempts = %v", attempts)
	}
}

func TestRetryMaxAttempts(t *testing.T) {
	calls := 0
	p := Policy{InitialInterval: time.Microsecond, MaxAttempts: 4}
	err := Retry(context.Background(), p, func(context.Context) error {
		calls++
		return errors.New("always")
	})
	if err == nil || calls != 4 {
		t.Fatalf("err=%v calls=%d, want failure after 4", err, calls)
	}
}

func TestRetryPermanentStopsImmediately(t *testing.T) {
	calls := 0
	sentinel := errors.New("bad request")
	err := Retry(context.Background(), Policy{InitialInterval: time.Microsecond}, func(context.Context) error {
		calls++
		return Permanent(fmt.Errorf("wrapping: %w", sentinel))
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err %v does not unwrap to sentinel", err)
	}
	if !IsPermanent(err) {
		t.Fatal("permanence lost through return")
	}
}

// TestRetryCancellationMidSleep: a canceled context must interrupt the
// backoff sleep promptly, not wait it out.
func TestRetryCancellationMidSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{InitialInterval: time.Hour, Jitter: 0} // sleep would be an hour
	done := make(chan error, 1)
	go func() {
		done <- Retry(ctx, p, func(context.Context) error { return errors.New("fail") })
	}()
	time.Sleep(10 * time.Millisecond) // let it enter the sleep
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Retry did not return after cancellation mid-sleep")
	}
}

func TestRetryMaxElapsed(t *testing.T) {
	start := time.Now()
	p := Policy{InitialInterval: 50 * time.Millisecond, Jitter: 0, MaxElapsed: 80 * time.Millisecond}
	err := Retry(context.Background(), p, func(context.Context) error { return errors.New("always") })
	if err == nil {
		t.Fatal("want failure")
	}
	// 1st sleep 50ms fits; the 2nd (100ms) would exceed 80ms total, so the
	// loop must give up without sleeping it out.
	if el := time.Since(start); el > time.Second {
		t.Fatalf("took %s; MaxElapsed did not stop the loop", el)
	}
}

// TestPolicySleepMath pins the deterministic (jitter-free) backoff schedule
// and the jitter bounds.
func TestPolicySleepMath(t *testing.T) {
	p := Policy{InitialInterval: 100 * time.Millisecond, MaxInterval: time.Second, Multiplier: 2, Jitter: 0}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i, w := range want {
		if got := p.Sleep(i + 1); got != w {
			t.Fatalf("Sleep(%d) = %s, want %s", i+1, got, w)
		}
	}
	// Full jitter draws uniformly in [0, ceiling): with Rand pinned the
	// value is exact.
	pj := Policy{InitialInterval: 100 * time.Millisecond, Jitter: -1, Rand: func() float64 { return 0.5 }}
	if got := pj.Sleep(1); got != 50*time.Millisecond {
		t.Fatalf("full-jitter Sleep(1) with rand=0.5 = %s, want 50ms", got)
	}
	pj.Rand = func() float64 { return 0 }
	if got := pj.Sleep(1); got != 0 {
		t.Fatalf("full-jitter Sleep(1) with rand=0 = %s, want 0", got)
	}
}

func TestAdmissionFastPathAndQueueFull(t *testing.T) {
	var mu sync.Mutex
	decisions := map[string]int{}
	release := make(chan struct{})
	a := NewAdmission(AdmissionConfig{
		MaxInFlight: 1, MaxQueue: -1, // no queue: overflow sheds at once
		OnDecision: func(d string) { mu.Lock(); decisions[d]++; mu.Unlock() },
	})
	h := a.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	defer close(release)

	// Occupy the single slot.
	first := make(chan int, 1)
	go func() {
		resp, err := http.Get(srv.URL)
		if err != nil {
			first <- -1
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	waitFor(t, func() bool { return a.InFlight() == 1 })

	// The second arrival must shed immediately with 429 + Retry-After.
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	release <- struct{}{}
	if code := <-first; code != http.StatusOK {
		t.Fatalf("first request status %d", code)
	}
	mu.Lock()
	defer mu.Unlock()
	if decisions[AdmissionShedQueue] != 1 || decisions[AdmissionAccepted] != 1 {
		t.Fatalf("decisions = %v", decisions)
	}
}

func TestAdmissionQueueTimeout(t *testing.T) {
	release := make(chan struct{})
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 8, QueueTimeout: 30 * time.Millisecond})
	h := a.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	defer close(release)

	go func() { resp, err := http.Get(srv.URL); _ = err; _ = resp }()
	waitFor(t, func() bool { return a.InFlight() == 1 })

	// This one queues, then times out.
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 after queue timeout", resp.StatusCode)
	}
	release <- struct{}{}
}

func TestAdmissionDisabled(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: -1})
	base := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
	if got := a.Middleware(base); fmt.Sprintf("%p", got) == "" {
		t.Fatal("unreachable")
	}
	rec := httptest.NewRecorder()
	a.Middleware(base).ServeHTTP(rec, httptest.NewRequest("POST", "/events", nil))
	if rec.Code != 200 {
		t.Fatalf("disabled gate interfered: %d", rec.Code)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}
