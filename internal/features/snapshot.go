package features

import (
	"fmt"

	"repro/internal/slurmsim"
	"repro/internal/trace"
)

// Snapshot is a live view of a queue: the deployment-side input for
// Algorithm 1, where pending jobs have no start time yet and running jobs
// have no end. The CLI builds one from the scheduler's current state (or a
// hypothetical job the user is considering, per §V's future-work mode).
type Snapshot struct {
	// Now is the prediction instant (the target's eligibility time).
	Now int64
	// Target is the job to predict. Start/End are ignored.
	Target trace.Job
	// Pending are the other jobs currently waiting in any partition.
	Pending []trace.Job
	// Running are the jobs currently executing in any partition.
	Running []trace.Job
	// History are recent job submissions (for the user past-day
	// aggregates); including Pending/Running members here is fine — rows
	// are deduplicated by job ID.
	History []trace.Job
}

// SnapshotRow builds the target job's 33-feature vector from live queue
// state — the deployment counterpart of Build, which works from completed
// accounting records.
func SnapshotRow(snap *Snapshot, cluster *slurmsim.ClusterSpec, rp *RuntimePredictor) ([]float64, error) {
	part := cluster.Partition(snap.Target.Partition)
	if part == nil {
		return nil, fmt.Errorf("features: snapshot target references unknown partition %q", snap.Target.Partition)
	}
	if rp == nil {
		return nil, fmt.Errorf("features: snapshot needs a runtime predictor")
	}
	tot := cluster.Totals(snap.Target.Partition)
	j := snap.Target
	row := make([]float64, NumFeatures)
	row[0] = float64(j.Priority)
	row[1] = float64(j.TimeLimit) / 60
	row[2] = float64(j.ReqCPUs)
	row[3] = j.ReqMemGB
	row[4] = float64(j.ReqNodes)

	var aheadJobs, aheadCPUs, aheadMem, aheadNodes, aheadLimit float64
	var qJobs, qCPUs, qMem, qNodes, qLimit, qPred float64
	for i := range snap.Pending {
		o := &snap.Pending[i]
		if o.Partition != j.Partition || o.ID == j.ID {
			continue
		}
		qJobs++
		qCPUs += float64(o.ReqCPUs)
		qMem += o.ReqMemGB
		qNodes += float64(o.ReqNodes)
		qLimit += float64(o.TimeLimit) / 60
		qPred += rp.PredictSeconds(o, cluster.Totals(o.Partition)) / 60
		if o.Priority > j.Priority {
			aheadJobs++
			aheadCPUs += float64(o.ReqCPUs)
			aheadMem += o.ReqMemGB
			aheadNodes += float64(o.ReqNodes)
			aheadLimit += float64(o.TimeLimit) / 60
		}
	}
	row[5], row[6], row[7], row[8], row[9] = aheadJobs, aheadCPUs, aheadMem, aheadNodes, aheadLimit
	row[10], row[11], row[12], row[13], row[14] = qJobs, qCPUs, qMem, qNodes, qLimit

	var rJobs, rCPUs, rMem, rNodes, rLimit, rPred float64
	for i := range snap.Running {
		o := &snap.Running[i]
		if o.Partition != j.Partition || o.ID == j.ID {
			continue
		}
		rJobs++
		rCPUs += float64(o.ReqCPUs)
		rMem += o.ReqMemGB
		rNodes += float64(o.ReqNodes)
		rLimit += float64(o.TimeLimit) / 60
		rPred += rp.PredictSeconds(o, cluster.Totals(o.Partition)) / 60
	}
	row[15], row[16], row[17], row[18], row[19] = rJobs, rCPUs, rMem, rNodes, rLimit

	// The target's own submission counts toward its user's past-day
	// activity when it happened before the prediction instant (a job held
	// by a dependency was submitted earlier) — matching the offline
	// builder's semantics. History rows are deduplicated by ID.
	seen := map[int]bool{}
	var uj, uc, um, un, ul float64
	for i := range snap.History {
		o := &snap.History[i]
		if o.User != j.User || seen[o.ID] {
			continue
		}
		if o.Submit < snap.Now-86400 || o.Submit >= snap.Now {
			continue
		}
		seen[o.ID] = true
		uj++
		uc += float64(o.ReqCPUs)
		um += o.ReqMemGB
		un += float64(o.ReqNodes)
		ul += float64(o.TimeLimit) / 60
	}
	row[20], row[21], row[22], row[23], row[24] = uj, uc, um, un, ul

	row[25] = float64(tot.Nodes)
	row[26] = float64(tot.CPUs)
	row[27] = tot.CPUPerNode
	row[28] = tot.MemPerNode
	row[29] = float64(tot.GPUs)

	row[30] = rp.PredictSeconds(&j, tot) / 60
	row[31] = qPred
	row[32] = rPred
	return row, nil
}
