GO ?= go

# Trace size for the snapshot benchmarks (legacy scan vs livestate engine).
BENCH_JOBS ?= 50000
# Repetitions per benchmark; pipe the output into benchstat to compare runs.
BENCH_COUNT ?= 5

.PHONY: all build test race vet fmt-check fuzz-smoke bench bench-json bench-smoke ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Root-package service tests train models; under the race detector on a
# single-CPU box that brushes the default 10m per-package limit.
race:
	$(GO) test -race -timeout 30m ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt; prints the offenders.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Short fuzz of the event decoder (corpus seeds + 5s of mutation).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDecodeEvent -fuzztime 5s ./internal/livestate

# Legacy O(N) snapshot scan vs the livestate engine's indexed extraction,
# in benchstat-friendly form:
#   make bench > new.txt && benchstat old.txt new.txt
bench:
	TROUT_BENCH_JOBS=$(BENCH_JOBS) $(GO) test -run '^$$' \
		-bench 'SnapshotAtInstant$$|LiveStateSnapshot$$' \
		-benchmem -count $(BENCH_COUNT) .

# Hot-path benchmark suites, archived as JSON so runs diff cleanly:
#   BENCH_inference.json — single vs sequential-64 vs batched-64 predicts,
#                          warm-forward allocation profile
#   BENCH_train.json     — hyperopt search, serial vs worker pool
bench-json:
	$(GO) test -run '^$$' -bench 'PredictSingle$$|PredictSequential64$$|PredictBatch64$$|ForwardAllocs$$' \
		-benchmem . > bench_inference.txt
	$(GO) run ./cmd/benchjson -o BENCH_inference.json bench_inference.txt
	$(GO) test -run '^$$' -bench 'HyperoptSearch' -benchmem ./internal/hyperopt > bench_train.txt
	$(GO) run ./cmd/benchjson -o BENCH_train.json bench_train.txt
	rm -f bench_inference.txt bench_train.txt

# One-iteration pass over the same benchmarks so CI catches bit-rot in the
# bench harness without paying for stable measurements.
bench-smoke:
	$(GO) test -run '^$$' -bench 'PredictSingle$$|PredictBatch64$$|ForwardAllocs$$' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'HyperoptSearch' -benchtime 1x ./internal/hyperopt

ci: fmt-check vet build race fuzz-smoke bench-smoke

clean:
	$(GO) clean ./...
