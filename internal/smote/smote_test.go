package smote

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

// imbalanced builds an 87/13-style dataset like the paper's class skew:
// majority near origin, minority near (10, 10).
func imbalanced(rng *rand.Rand, nMaj, nMin int) ([][]float64, []bool) {
	X := make([][]float64, 0, nMaj+nMin)
	y := make([]bool, 0, nMaj+nMin)
	for i := 0; i < nMaj; i++ {
		X = append(X, []float64{rng.NormFloat64(), rng.NormFloat64()})
		y = append(y, false)
	}
	for i := 0; i < nMin; i++ {
		X = append(X, []float64{10 + rng.NormFloat64(), 10 + rng.NormFloat64()})
		y = append(y, true)
	}
	return X, y
}

func counts(y []bool) (pos, neg int) {
	for _, v := range y {
		if v {
			pos++
		} else {
			neg++
		}
	}
	return
}

func TestBalanceRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := imbalanced(rng, 870, 130)
	bx, by, err := Balance(Config{Seed: 2}, X, y)
	if err != nil {
		t.Fatal(err)
	}
	pos, neg := counts(by)
	ratio := float64(pos) / float64(neg)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("balanced ratio %v (pos=%d neg=%d)", ratio, pos, neg)
	}
	if len(bx) != len(by) {
		t.Fatal("length mismatch")
	}
	// Minority grew, majority shrank.
	if pos <= 130 {
		t.Fatalf("minority not oversampled: %d", pos)
	}
	if neg >= 870 {
		t.Fatalf("majority not undersampled: %d", neg)
	}
}

func TestSyntheticsInterpolateMinority(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := imbalanced(rng, 500, 50)
	bx, by, err := Balance(Config{Seed: 4}, X, y)
	if err != nil {
		t.Fatal(err)
	}
	// Every synthetic minority sample must lie inside the minority
	// cluster's bounding box (convexity of interpolation).
	var lo, hi [2]float64
	lo[0], lo[1] = math.Inf(1), math.Inf(1)
	hi[0], hi[1] = math.Inf(-1), math.Inf(-1)
	for i, lbl := range y {
		if !lbl {
			continue
		}
		for j := 0; j < 2; j++ {
			if X[i][j] < lo[j] {
				lo[j] = X[i][j]
			}
			if X[i][j] > hi[j] {
				hi[j] = X[i][j]
			}
		}
	}
	for i, lbl := range by {
		if !lbl {
			continue
		}
		for j := 0; j < 2; j++ {
			if bx[i][j] < lo[j]-1e-9 || bx[i][j] > hi[j]+1e-9 {
				t.Fatalf("synthetic sample %v outside minority hull", bx[i])
			}
		}
	}
}

func TestMinorityDetectionEitherLabel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Flip: true is the majority here.
	X, y := imbalanced(rng, 50, 400)
	bx, by, err := Balance(Config{Seed: 6}, X, y)
	if err != nil {
		t.Fatal(err)
	}
	pos, neg := counts(by)
	if pos == 0 || neg == 0 {
		t.Fatal("a class vanished")
	}
	ratio := float64(neg) / float64(pos)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("ratio %v with flipped labels", ratio)
	}
	_ = bx
}

func TestSingleClassErrors(t *testing.T) {
	X := [][]float64{{1}, {2}}
	if _, _, err := Balance(Config{}, X, []bool{true, true}); err == nil {
		t.Fatal("single class accepted")
	}
}

func TestInputErrors(t *testing.T) {
	if _, _, err := Balance(Config{}, nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, _, err := Balance(Config{}, [][]float64{{1}}, []bool{true, false}); err == nil {
		t.Fatal("mismatched input accepted")
	}
}

func TestSingleMinorityPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	X := make([][]float64, 0, 21)
	y := make([]bool, 0, 21)
	for i := 0; i < 20; i++ {
		X = append(X, []float64{rng.NormFloat64()})
		y = append(y, false)
	}
	X = append(X, []float64{100})
	y = append(y, true)
	bx, by, err := Balance(Config{Seed: 8}, X, y)
	if err != nil {
		t.Fatal(err)
	}
	pos, _ := counts(by)
	if pos < 1 {
		t.Fatal("minority vanished")
	}
	for i, lbl := range by {
		if lbl && bx[i][0] != 100 {
			t.Fatalf("degenerate synthetic %v should clone the single point", bx[i])
		}
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	X, y := imbalanced(rng, 300, 40)
	ax, ay, err := Balance(Config{Seed: 10}, X, y)
	if err != nil {
		t.Fatal(err)
	}
	bx, by, err := Balance(Config{Seed: 10}, X, y)
	if err != nil {
		t.Fatal(err)
	}
	if len(ax) != len(bx) {
		t.Fatal("nondeterministic size")
	}
	for i := range ax {
		if ay[i] != by[i] || ax[i][0] != bx[i][0] {
			t.Fatal("nondeterministic content")
		}
	}
}

// Property: balancing never loses the minority class and never inflates the
// dataset beyond originals + cap.
func TestBalanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nMaj := 20 + rng.Intn(200)
		nMin := 2 + rng.Intn(20)
		X, y := imbalanced(rng, nMaj, nMin)
		bx, by, err := Balance(Config{Seed: seed}, X, y)
		if err != nil {
			return false
		}
		pos, neg := counts(by)
		if pos == 0 || neg == 0 {
			return false
		}
		return len(bx) <= nMaj+nMin*(1+10)+nMaj
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBalanceParallelInvariance: the row-parallel neighbor search must not
// change Balance's seeded output — same dataset, same seed, GOMAXPROCS 1
// (serial path) vs 4 (parallel path), identical results. The minority set
// is sized past neighborParallelRows so the parallel path actually runs.
func TestBalanceParallelInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	X, y := imbalanced(rng, 4000, neighborParallelRows+40)

	run := func(procs int) ([][]float64, []bool) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		bx, by, err := Balance(Config{Seed: 10}, X, y)
		if err != nil {
			t.Fatal(err)
		}
		return bx, by
	}
	ax, ay := run(1)
	bx, by := run(4)
	if len(ax) != len(bx) {
		t.Fatalf("sizes differ: %d vs %d", len(ax), len(bx))
	}
	for i := range ax {
		if ay[i] != by[i] {
			t.Fatalf("label %d differs across worker counts", i)
		}
		for j := range ax[i] {
			if ax[i][j] != bx[i][j] {
				t.Fatalf("row %d col %d differs: %v vs %v", i, j, ax[i][j], bx[i][j])
			}
		}
	}
}
