// Package workload synthesizes an Anvil-like job stream for the cluster
// simulator. It substitutes for the paper's proprietary Slurm accounting
// data and is shaped to its published statistics (Table I and §III/§V):
//
//   - a Zipf-distributed user population (median user submits tens of jobs,
//     the heaviest submits hundreds of thousands);
//   - ~69 % of jobs target the `shared` partition, the rest spread over six
//     others;
//   - heavy wall-time over-estimation (mean usage ≈ 15 %, power users < 5 %);
//   - bursty back-to-back submissions of near-identical jobs by the same
//     user — the correlation that makes shuffled train/test splits leak;
//   - a mix of short and multi-day requested time limits whose mean lands
//     near the paper's 12.5 h.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/slurmsim"
)

// Config controls workload synthesis.
type Config struct {
	Seed     int64
	NumJobs  int
	NumUsers int
	// Start is the epoch (Unix seconds) of the first submission.
	Start int64
	// MeanInterarrival is the mean seconds between submission events
	// (a burst counts as one event).
	MeanInterarrival float64
	// BurstProb is the probability a submission event is a burst;
	// burst lengths are geometric with mean BurstMean.
	BurstProb float64
	BurstMean float64
	// PartitionMix maps partition name to selection probability. Values
	// are normalized; the default mirrors the paper (shared ≈ 0.69).
	PartitionMix map[string]float64
	// MeanWalltimeUsage is the population mean of runtime/timelimit.
	MeanWalltimeUsage float64
	// EligibleDelayProb is the chance a job has a deferred begin time.
	EligibleDelayProb float64
	// TargetUtilization rescales submission times after generation so the
	// offered load (Σ cpus×runtime / span) lands at this fraction of the
	// cluster's CPU capacity, making the queue-time skew stable across
	// seeds. 0 disables normalization.
	TargetUtilization float64
	// ChainProb is the probability a burst becomes a dependency chain
	// (each member waits for the previous one — Slurm afterany), another
	// source of eligible ≠ submit gaps.
	ChainProb float64
	// DiurnalAmplitude in [0, 1) modulates the arrival rate with a 24-hour
	// sinusoid (peak mid-day, trough at night), the daily cycle real HPC
	// submission logs show. 0 keeps arrivals homogeneous.
	DiurnalAmplitude float64
}

// DefaultConfig returns a configuration shaped like the paper's dataset for
// a scale-1 AnvilLike cluster.
func DefaultConfig(numJobs int, seed int64) Config {
	return Config{
		Seed:             seed,
		NumJobs:          numJobs,
		NumUsers:         maxInt(40, numJobs/150),
		Start:            1_700_000_000,
		MeanInterarrival: 1100,
		BurstProb:        0.25,
		BurstMean:        8,
		PartitionMix: map[string]float64{
			"shared":    0.6895, // paper: 68.95 % of jobs
			"wholenode": 0.10,
			"wide":      0.02,
			"highmem":   0.04,
			"gpu":       0.07,
			"debug":     0.05,
			"standby":   0.0305,
		},
		MeanWalltimeUsage: 0.15,
		EligibleDelayProb: 0.03,
		TargetUtilization: 0.60,
		ChainProb:         0.05,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// user is a synthetic user profile. Back-to-back bursts reuse the template
// so consecutive jobs look nearly identical, as the paper observed.
type user struct {
	id        int
	weight    float64 // Zipf activity weight
	partition string
	cpusLog   float64 // log-normal location of CPU request
	usageMean float64 // mean runtime/timelimit for this user
	nodesBias int     // extra nodes for wholenode/wide users
	qos       int
	cumWeight float64
}

// timeLimitChoices are requested wall times (seconds) with weights shaped so
// the mean lands near the paper's 12.55 h and the median near 4 h.
var timeLimitChoices = []struct {
	seconds int64
	weight  float64
}{
	{30 * 60, 0.13},
	{2 * 3600, 0.17},
	{4 * 3600, 0.25},
	{8 * 3600, 0.15},
	{12 * 3600, 0.10},
	{24 * 3600, 0.10},
	{48 * 3600, 0.06},
	{96 * 3600, 0.04},
}

// Generate synthesizes job specs for the given cluster. Jobs are returned
// in submission order with sequential IDs starting at 1.
func Generate(cfg Config, cluster *slurmsim.ClusterSpec) ([]slurmsim.JobSpec, error) {
	if cfg.NumJobs <= 0 {
		return nil, fmt.Errorf("workload: NumJobs must be positive")
	}
	if cfg.NumUsers <= 0 {
		return nil, fmt.Errorf("workload: NumUsers must be positive")
	}
	if cfg.MeanInterarrival <= 0 {
		return nil, fmt.Errorf("workload: MeanInterarrival must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	partNames, partCum, err := normalizeMix(cfg.PartitionMix, cluster)
	if err != nil {
		return nil, err
	}

	users := makeUsers(cfg, rng, partNames, partCum)

	if cfg.DiurnalAmplitude < 0 || cfg.DiurnalAmplitude >= 1 {
		return nil, fmt.Errorf("workload: DiurnalAmplitude %v outside [0,1)", cfg.DiurnalAmplitude)
	}

	specs := make([]slurmsim.JobSpec, 0, cfg.NumJobs)
	clock := float64(cfg.Start)
	id := 1
	for len(specs) < cfg.NumJobs {
		clock += rng.ExpFloat64() * cfg.MeanInterarrival
		if cfg.DiurnalAmplitude > 0 {
			// Thinning: resample arrivals against the time-of-day rate
			// multiplier 1 + A·sin(2πt/day), peaking at 06:00 UTC+6h.
			for {
				phase := 2 * math.Pi * math.Mod(clock, 86400) / 86400
				mult := (1 + cfg.DiurnalAmplitude*math.Sin(phase)) / (1 + cfg.DiurnalAmplitude)
				if rng.Float64() < mult {
					break
				}
				clock += rng.ExpFloat64() * cfg.MeanInterarrival
			}
		}
		u := pickUser(users, rng)
		n := 1
		if rng.Float64() < cfg.BurstProb {
			n = 1 + int(rng.ExpFloat64()*cfg.BurstMean)
			if n > 400 {
				n = 400
			}
		}
		tmpl := u.template(rng, cluster)
		chain := n > 1 && rng.Float64() < cfg.ChainProb
		burstClock := clock
		prevID := 0
		for k := 0; k < n && len(specs) < cfg.NumJobs; k++ {
			sp := tmpl
			sp.ID = id
			id++
			if chain && prevID != 0 {
				sp.DependsOn = prevID
			}
			prevID = sp.ID
			sp.Submit = int64(burstClock)
			burstClock += 1 + rng.ExpFloat64()*4 // seconds between burst members
			// Small per-job jitter on runtime keeps burst members
			// similar but not identical.
			jitter := 0.8 + rng.Float64()*0.4
			sp.Runtime = int64(float64(sp.Runtime) * jitter)
			if sp.Runtime < 1 {
				sp.Runtime = 1
			}
			if sp.Runtime > sp.TimeLimit {
				sp.Runtime = sp.TimeLimit
			}
			if rng.Float64() < cfg.EligibleDelayProb {
				sp.EligibleDelay = int64(rng.ExpFloat64() * 1800)
			}
			specs = append(specs, sp)
		}
		// Later events must not predate burst members already emitted.
		if burstClock > clock {
			clock = burstClock
		}
	}
	if cfg.TargetUtilization > 0 {
		normalizeLoad(specs, cluster, cfg)
	}
	return specs, nil
}

// normalizeLoad rescales submit times around the trace start so the offered
// CPU load is TargetUtilization of capacity. The heavy-user lottery
// otherwise makes per-seed load vary several-fold, which would swing the
// queue-time distribution far from the paper's 87 %-under-10-minutes shape.
func normalizeLoad(specs []slurmsim.JobSpec, cluster *slurmsim.ClusterSpec, cfg Config) {
	if len(specs) < 2 {
		return
	}
	// Partitions sharing nodes form one pool; the binding constraint is
	// the most-loaded pool (a 2-node GPU partition saturates long before
	// the CPU pool does).
	poolOf := poolAssignment(cluster)
	type capacity struct{ cpus, mem, gpus float64 }
	poolCap := map[int]*capacity{}
	for id, n := range cluster.Nodes {
		c := poolCap[poolOf[id]]
		if c == nil {
			c = &capacity{}
			poolCap[poolOf[id]] = c
		}
		c.cpus += float64(n.CPUs)
		c.mem += n.MemGB
		c.gpus += float64(n.GPUs)
	}
	partPool := map[string]int{}
	for _, p := range cluster.Partitions {
		partPool[p.Name] = poolOf[p.NodeIDs[0]]
	}
	poolDemand := map[int]*capacity{}
	for i := range specs {
		d := poolDemand[partPool[specs[i].Partition]]
		if d == nil {
			d = &capacity{}
			poolDemand[partPool[specs[i].Partition]] = d
		}
		rt := float64(specs[i].Runtime)
		d.cpus += float64(specs[i].ReqCPUs) * rt
		d.mem += specs[i].ReqMemGB * rt
		d.gpus += float64(specs[i].ReqGPUs) * rt
	}
	span := float64(specs[len(specs)-1].Submit - specs[0].Submit)
	if span <= 0 {
		return
	}
	// The binding constraint is the most-loaded resource of the
	// most-loaded pool (the GPU pool runs out of GPUs long before CPUs).
	load := 0.0
	for pool, d := range poolDemand {
		c := poolCap[pool]
		for _, r := range [][2]float64{{d.cpus, c.cpus}, {d.mem, c.mem}, {d.gpus, c.gpus}} {
			if r[1] > 0 && r[0]/span/r[1] > load {
				load = r[0] / span / r[1]
			}
		}
	}
	if load <= 0 {
		return
	}
	alpha := load / cfg.TargetUtilization
	start := specs[0].Submit
	for i := range specs {
		specs[i].Submit = start + int64(float64(specs[i].Submit-start)*alpha)
	}
	// Rescaling can collapse burst members onto the same second; keep
	// submission order strictly monotone within ties for determinism.
	for i := 1; i < len(specs); i++ {
		if specs[i].Submit < specs[i-1].Submit {
			specs[i].Submit = specs[i-1].Submit
		}
	}
}

// rebalanceMix returns the cumulative tail-user partition distribution such
// that pinning a `heavyShare` fraction of activity to `dominant` still
// yields the configured overall mix: tail probability of the dominant
// partition is reduced by the pinned mass, the rest renormalized.
func rebalanceMix(mix map[string]float64, partNames []string, dominant string, heavyShare float64) []float64 {
	var total float64
	for _, n := range partNames {
		total += mix[n]
	}
	adj := make([]float64, len(partNames))
	var adjTotal float64
	for i, n := range partNames {
		p := mix[n] / total
		if n == dominant {
			p = (p - heavyShare) / (1 - heavyShare)
			if p < 0 {
				p = 0
			}
		} else {
			p = p / (1 - heavyShare)
		}
		adj[i] = p
		adjTotal += p
	}
	cum := make([]float64, len(adj))
	acc := 0.0
	for i, p := range adj {
		acc += p / adjTotal
		cum[i] = acc
	}
	return cum
}

// poolAssignment groups nodes into pools via union-find over partitions
// (nodes in the same partition share a pool).
func poolAssignment(cluster *slurmsim.ClusterSpec) []int {
	parent := make([]int, len(cluster.Nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, p := range cluster.Partitions {
		root := find(p.NodeIDs[0])
		for _, id := range p.NodeIDs[1:] {
			parent[find(id)] = root
		}
	}
	out := make([]int, len(parent))
	for i := range parent {
		out[i] = find(i)
	}
	return out
}

// normalizeMix validates the partition mix against the cluster and returns
// cumulative probabilities in a deterministic order.
func normalizeMix(mix map[string]float64, cluster *slurmsim.ClusterSpec) ([]string, []float64, error) {
	if len(mix) == 0 {
		return nil, nil, fmt.Errorf("workload: empty partition mix")
	}
	names := make([]string, 0, len(mix))
	for name := range mix {
		if cluster.Partition(name) == nil {
			return nil, nil, fmt.Errorf("workload: mix references unknown partition %q", name)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var total float64
	for _, n := range names {
		if mix[n] < 0 {
			return nil, nil, fmt.Errorf("workload: negative weight for %q", n)
		}
		total += mix[n]
	}
	if total <= 0 {
		return nil, nil, fmt.Errorf("workload: partition mix sums to zero")
	}
	cum := make([]float64, len(names))
	acc := 0.0
	for i, n := range names {
		acc += mix[n] / total
		cum[i] = acc
	}
	return names, cum, nil
}

// makeUsers builds the user population with Zipf activity weights.
func makeUsers(cfg Config, rng *rand.Rand, partNames []string, partCum []float64) []user {
	users := make([]user, cfg.NumUsers)
	var cum float64
	// The heaviest users are pinned to the dominant partition: a single
	// Zipf-head user landing on a 2-node partition would otherwise swamp
	// it regardless of aggregate load. The tail users' mix is rebalanced
	// so the overall partition shares still match cfg.PartitionMix.
	heavy := cfg.NumUsers / 10
	if heavy < 2 {
		heavy = 2
	}
	dominant := partNames[0]
	bestW := -1.0
	for _, n := range partNames {
		if cfg.PartitionMix[n] > bestW {
			bestW = cfg.PartitionMix[n]
			dominant = n
		}
	}
	// Weight share held by the pinned users.
	var heavyW, totalW float64
	for i := 0; i < cfg.NumUsers; i++ {
		w := 1.0 / math.Pow(float64(i+1), 1.05)
		totalW += w
		if i < heavy {
			heavyW += w
		}
	}
	partCum = rebalanceMix(cfg.PartitionMix, partNames, dominant, heavyW/totalW)
	for i := range users {
		// Zipf-ish activity: weight ∝ 1/rank^1.05 (the paper's heaviest
		// user holds ~13 % of all jobs; steeper exponents make the trace
		// shape hostage to a single user's profile).
		w := 1.0 / math.Pow(float64(i+1), 1.05)
		// Partition preference: drawn once per user so each user's jobs
		// concentrate in one partition.
		r := rng.Float64()
		part := partNames[len(partNames)-1]
		for k, c := range partCum {
			if r < c {
				part = partNames[k]
				break
			}
		}
		if i < heavy {
			part = dominant
		}
		// Per-user mean wall-time usage: Beta-like around the population
		// mean, with a heavy tail of extreme over-requesters (<5 %).
		usage := cfg.MeanWalltimeUsage * (0.3 + rng.ExpFloat64())
		if usage > 0.95 {
			usage = 0.95
		}
		if usage < 0.01 {
			usage = 0.01
		}
		users[i] = user{
			id:        i + 1,
			weight:    w,
			partition: part,
			cpusLog:   math.Log(4) + rng.NormFloat64()*0.9,
			usageMean: usage,
			nodesBias: rng.Intn(3),
			qos:       rng.Intn(3),
		}
		cum += w
		users[i].cumWeight = cum
	}
	return users
}

// pickUser samples a user by Zipf weight via binary search on the
// cumulative weights.
func pickUser(users []user, rng *rand.Rand) *user {
	total := users[len(users)-1].cumWeight
	r := rng.Float64() * total
	lo, hi := 0, len(users)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if users[mid].cumWeight < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return &users[lo]
}

// template draws one job shape for the user, sized to their partition.
func (u *user) template(rng *rand.Rand, cluster *slurmsim.ClusterSpec) slurmsim.JobSpec {
	part := cluster.Partition(u.partition)
	totals := cluster.Totals(u.partition)
	sp := slurmsim.JobSpec{
		User:      u.id,
		Partition: u.partition,
		ReqNodes:  1,
		QOS:       u.qos,
		// Debug-partition work is overwhelmingly interactive sessions.
		// (Deterministic rule — no RNG draw — so traces generated before
		// this field was populated are bit-identical.)
		Interactive: u.partition == "debug",
	}

	// Requested wall time, clamped to the partition max.
	r := rng.Float64()
	var acc float64
	sp.TimeLimit = timeLimitChoices[len(timeLimitChoices)-1].seconds
	var totalW float64
	for _, c := range timeLimitChoices {
		totalW += c.weight
	}
	for _, c := range timeLimitChoices {
		acc += c.weight / totalW
		if r < acc {
			sp.TimeLimit = c.seconds
			break
		}
	}
	if part.MaxTime > 0 && sp.TimeLimit > part.MaxTime {
		sp.TimeLimit = part.MaxTime
	}

	nodeCPUs := int(totals.CPUPerNode)
	nodeMem := totals.MemPerNode
	switch {
	case part.Exclusive:
		nodes := 1 + u.nodesBias
		if u.partition == "wide" {
			nodes = 2 + rng.Intn(4)
		}
		if nodes > totals.Nodes {
			nodes = totals.Nodes
		}
		sp.ReqNodes = nodes
		sp.ReqCPUs = nodes * nodeCPUs
		sp.ReqMemGB = float64(nodes) * nodeMem
	case u.partition == "gpu":
		// Mostly single-GPU jobs, occasionally multi-GPU.
		sp.ReqGPUs = 1
		if rng.Float64() < 0.3 {
			sp.ReqGPUs = 2 + rng.Intn(3)
		}
		sp.ReqCPUs = sp.ReqGPUs * 16
		sp.ReqMemGB = float64(sp.ReqGPUs) * 64
	default:
		cpus := int(math.Exp(u.cpusLog + rng.NormFloat64()*0.5))
		if cpus < 1 {
			cpus = 1
		}
		if cpus > nodeCPUs {
			cpus = nodeCPUs
		}
		sp.ReqCPUs = cpus
		sp.ReqMemGB = float64(cpus) * nodeMem / float64(nodeCPUs) * (0.5 + rng.Float64())
		if sp.ReqMemGB < 1 {
			sp.ReqMemGB = 1
		}
		if sp.ReqMemGB > nodeMem {
			sp.ReqMemGB = nodeMem
		}
	}

	// Actual runtime: user-specific usage fraction with spread; most jobs
	// finish far before their limit, a few hit it (TIMEOUT).
	frac := u.usageMean * (0.2 + rng.ExpFloat64()*0.8)
	if rng.Float64() < 0.02 {
		frac = 1.0 // timeout
	}
	if frac > 1 {
		frac = 1
	}
	sp.Runtime = int64(frac * float64(sp.TimeLimit))
	if sp.Runtime < 1 {
		sp.Runtime = 1
	}
	return sp
}
