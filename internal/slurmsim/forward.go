package slurmsim

import "fmt"

// RunningJob is a job observed mid-execution in a queue snapshot.
type RunningJob struct {
	Spec    JobSpec
	Elapsed int64 // seconds it has already run
}

// ForwardState is a live queue snapshot for the forward-simulation
// estimator: what the scheduler knows at instant Now.
type ForwardState struct {
	Now     int64
	Running []RunningJob
	Pending []JobSpec // includes the target; order carries no meaning
	// TargetID selects the pending job whose start time is wanted.
	TargetID int
}

// EstimateStartTime is the classical scheduler-simulation predictor (the
// pre-ML baseline for queue-wait estimation, cf. Brown et al.): replay the
// scheduler forward assuming every job runs to its requested time limit and
// report when the target starts. It is deterministic and pessimistic —
// real jobs finish early (the paper: mean 15 % wall-time usage), which is
// precisely the error source TROUT's learned model corrects for.
func EstimateStartTime(cfg Config, state ForwardState) (int64, error) {
	s, err := New(cfg)
	if err != nil {
		return 0, err
	}
	s.nUsers = countUsers(state)

	// Seed running jobs: allocate them capacity-equivalently (first-fit;
	// exact node placement is unknown from accounting data) and schedule
	// their ends at limit − elapsed.
	for _, r := range state.Running {
		part := cfg.Cluster.Partition(r.Spec.Partition)
		if part == nil {
			return 0, fmt.Errorf("slurmsim: running job %d in unknown partition %q", r.Spec.ID, r.Spec.Partition)
		}
		j := &simJob{spec: r.Spec, part: part, eligible: state.Now, start: state.Now - r.Elapsed}
		ids := s.tryAlloc(s.nodes, j)
		if ids == nil {
			// Snapshot inconsistent with cluster capacity (e.g. stale
			// records); skip rather than fail the whole estimate.
			continue
		}
		s.startJob(j, ids, j.start)
		remaining := r.Spec.TimeLimit - r.Elapsed
		if remaining < 1 {
			remaining = 1
		}
		// startJob scheduled the end at start+runtime; re-pin it to the
		// pessimistic limit-based end.
		j.runEpoch++
		j.end = state.Now + remaining
		s.push(event{at: j.end, kind: evEnd, job: j, epoch: j.runEpoch})
	}

	// Seed pending jobs, runtime = full limit (the scheduler's view).
	var target *simJob
	for i := range state.Pending {
		sp := state.Pending[i]
		sp.Runtime = sp.TimeLimit
		part := cfg.Cluster.Partition(sp.Partition)
		if part == nil {
			return 0, fmt.Errorf("slurmsim: pending job %d in unknown partition %q", sp.ID, sp.Partition)
		}
		if err := s.checkFeasible(sp, part); err != nil {
			if sp.ID == state.TargetID {
				return 0, fmt.Errorf("slurmsim: target job infeasible: %w", err)
			}
			continue
		}
		j := &simJob{spec: sp, part: part, eligible: state.Now}
		if sp.ID == state.TargetID {
			target = j
		}
		s.push(event{at: state.Now, kind: evEligible, job: j})
	}
	if target == nil {
		return 0, fmt.Errorf("slurmsim: target job %d not in pending set", state.TargetID)
	}

	// Drive the event loop until the target starts (it must: all jobs
	// terminate at their limits).
	for len(s.events) > 0 {
		now := s.events[0].at
		var batch []event
		for len(s.events) > 0 && s.events[0].at == now {
			batch = append(batch, s.popMin())
		}
		for _, ev := range batch {
			if ev.kind == evEnd && ev.epoch == ev.job.runEpoch {
				s.finish(ev.job, now)
			}
		}
		for _, ev := range batch {
			if ev.kind == evEligible {
				s.pending = append(s.pending, ev.job)
				ev.job.initPrio = int64(s.jobPriority(ev.job, now))
				s.dirty = true
			}
		}
		s.schedule(now)
		if _, running := s.running[target.spec.ID]; running || target.start > 0 {
			return target.start, nil
		}
	}
	return 0, fmt.Errorf("slurmsim: event loop drained without starting target %d", state.TargetID)
}

// popMin removes and returns the earliest event.
func (s *Simulator) popMin() event {
	ev := s.events[0]
	n := len(s.events)
	s.events[0] = s.events[n-1]
	s.events = s.events[:n-1]
	// Restore heap property.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(s.events) && s.events.Less(l, small) {
			small = l
		}
		if r < len(s.events) && s.events.Less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		s.events.Swap(i, small)
		i = small
	}
	return ev
}

func countUsers(state ForwardState) int {
	users := map[int]bool{}
	for _, r := range state.Running {
		users[r.Spec.User] = true
	}
	for _, p := range state.Pending {
		users[p.User] = true
	}
	if len(users) == 0 {
		return 1
	}
	return len(users)
}
