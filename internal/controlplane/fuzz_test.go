package controlplane

import (
	"testing"
)

// FuzzManifestDecode drives DecodeManifest with arbitrary bytes: it must
// never panic, and anything it accepts must re-encode and decode back to
// the same semantic content (version lineage, IDs, statuses, active mark).
func FuzzManifestDecode(f *testing.F) {
	f.Add([]byte(`{"active":0,"versions":[]}`))
	f.Add([]byte(`{"active":1,"versions":[{"version":1,"id":"` +
		"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa" +
		`","created_unix":1700000000,"watermark":1700000000,"samples":10,` +
		`"eval":{"mae_minutes":4.5,"mape":60,"hit_rate":0.9},"status":"active"}]}`))
	f.Add([]byte(`{"active":9,"versions":[]}`))
	f.Add([]byte(`{"versions":[{"version":2,"id":"zz","status":"shadow"}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"active":1,"versions":[{"version":1},{"version":1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeManifest(data)
		if err != nil {
			return // rejected input: fine, as long as it did not panic
		}
		out, err := EncodeManifest(s)
		if err != nil {
			t.Fatalf("accepted set failed to re-encode: %v", err)
		}
		s2, err := DecodeManifest(out)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v\nencoded: %s", err, out)
		}
		if s2.Active != s.Active || len(s2.Versions) != len(s.Versions) {
			t.Fatalf("round-trip changed shape: %+v vs %+v", s, s2)
		}
		for i := range s.Versions {
			a, b := &s.Versions[i], &s2.Versions[i]
			if a.Version != b.Version || a.ID != b.ID || a.Status != b.Status ||
				a.Parent != b.Parent || a.Samples != b.Samples {
				t.Fatalf("round-trip changed version %d: %+v vs %+v", a.Version, a, b)
			}
		}
	})
}
