// Package scaling implements the feature transforms the paper evaluated:
// the natural-log transform applied to all features in the final model, and
// the min-max, standard (z-score) and Box-Cox scalers that were tested and
// rejected (§III). All scalers are fit on training data only and applied to
// held-out data, preserving the paper's time-ordered evaluation discipline.
package scaling

import (
	"fmt"
	"math"
)

// Kind names a scaler.
type Kind string

// Supported scalers.
const (
	None     Kind = "none"
	Log1p    Kind = "log"    // ln(1+x), the paper's choice
	MinMax   Kind = "minmax" // (x-min)/(max-min)
	Standard Kind = "standard"
	BoxCox   Kind = "boxcox"
)

// Scaler transforms feature columns. Fit learns column statistics from the
// training matrix (rows = samples); Transform applies them.
type Scaler interface {
	Fit(rows [][]float64)
	Transform(row []float64) []float64
	Kind() Kind
}

// New returns a scaler of the given kind.
func New(kind Kind) (Scaler, error) {
	switch kind {
	case None:
		return &noneScaler{}, nil
	case Log1p:
		return &logScaler{}, nil
	case MinMax:
		return &minMaxScaler{}, nil
	case Standard:
		return &standardScaler{}, nil
	case BoxCox:
		return &boxCoxScaler{}, nil
	default:
		return nil, fmt.Errorf("scaling: unknown kind %q", kind)
	}
}

// Kinds lists every supported scaler (for the A5 ablation sweep).
func Kinds() []Kind { return []Kind{None, Log1p, MinMax, Standard, BoxCox} }

type noneScaler struct{}

func (s *noneScaler) Fit([][]float64) {}
func (s *noneScaler) Transform(row []float64) []float64 {
	return append([]float64(nil), row...)
}
func (s *noneScaler) Kind() Kind { return None }

// logScaler applies ln(1+max(x,0)) element-wise; negative inputs (which the
// queue features never produce) are clamped to 0.
type logScaler struct{}

func (s *logScaler) Fit([][]float64) {}
func (s *logScaler) Transform(row []float64) []float64 {
	out := make([]float64, len(row))
	for i, v := range row {
		if v < 0 {
			v = 0
		}
		out[i] = math.Log1p(v)
	}
	return out
}
func (s *logScaler) Kind() Kind { return Log1p }

type minMaxScaler struct {
	min, span []float64
}

func (s *minMaxScaler) Fit(rows [][]float64) {
	if len(rows) == 0 {
		return
	}
	d := len(rows[0])
	s.min = make([]float64, d)
	maxv := make([]float64, d)
	for j := 0; j < d; j++ {
		s.min[j] = math.Inf(1)
		maxv[j] = math.Inf(-1)
	}
	for _, r := range rows {
		for j, v := range r {
			if v < s.min[j] {
				s.min[j] = v
			}
			if v > maxv[j] {
				maxv[j] = v
			}
		}
	}
	s.span = make([]float64, d)
	for j := 0; j < d; j++ {
		s.span[j] = maxv[j] - s.min[j]
		if s.span[j] == 0 {
			s.span[j] = 1
		}
	}
}

func (s *minMaxScaler) Transform(row []float64) []float64 {
	out := make([]float64, len(row))
	if s.min == nil {
		copy(out, row)
		return out
	}
	for j, v := range row {
		out[j] = (v - s.min[j]) / s.span[j]
	}
	return out
}
func (s *minMaxScaler) Kind() Kind { return MinMax }

type standardScaler struct {
	mean, std []float64
}

func (s *standardScaler) Fit(rows [][]float64) {
	if len(rows) == 0 {
		return
	}
	d := len(rows[0])
	s.mean = make([]float64, d)
	for _, r := range rows {
		for j, v := range r {
			s.mean[j] += v
		}
	}
	n := float64(len(rows))
	for j := range s.mean {
		s.mean[j] /= n
	}
	s.std = make([]float64, d)
	for _, r := range rows {
		for j, v := range r {
			dev := v - s.mean[j]
			s.std[j] += dev * dev
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / n)
		if s.std[j] == 0 {
			s.std[j] = 1
		}
	}
}

func (s *standardScaler) Transform(row []float64) []float64 {
	out := make([]float64, len(row))
	if s.mean == nil {
		copy(out, row)
		return out
	}
	for j, v := range row {
		out[j] = (v - s.mean[j]) / s.std[j]
	}
	return out
}
func (s *standardScaler) Kind() Kind { return Standard }

// boxCoxScaler fits a per-column Box-Cox λ by maximizing the log-likelihood
// over a coarse grid, after shifting columns positive.
type boxCoxScaler struct {
	lambda []float64
	shift  []float64
}

// boxCox applies the Box-Cox transform for a single value (x must be > 0).
func boxCox(x, lambda float64) float64 {
	if lambda == 0 {
		return math.Log(x)
	}
	return (math.Pow(x, lambda) - 1) / lambda
}

func (s *boxCoxScaler) Fit(rows [][]float64) {
	if len(rows) == 0 {
		return
	}
	d := len(rows[0])
	s.lambda = make([]float64, d)
	s.shift = make([]float64, d)
	grid := []float64{-1, -0.5, 0, 0.25, 0.5, 1, 2}
	col := make([]float64, len(rows))
	for j := 0; j < d; j++ {
		minv := math.Inf(1)
		for i, r := range rows {
			col[i] = r[j]
			if r[j] < minv {
				minv = r[j]
			}
		}
		if minv <= 0 {
			s.shift[j] = 1 - minv
		}
		bestLL := math.Inf(-1)
		best := 1.0
		for _, lam := range grid {
			ll := boxCoxLL(col, s.shift[j], lam)
			if ll > bestLL {
				bestLL = ll
				best = lam
			}
		}
		s.lambda[j] = best
	}
}

// boxCoxLL is the profile log-likelihood of λ for one column.
func boxCoxLL(col []float64, shift, lambda float64) float64 {
	n := float64(len(col))
	var mean float64
	tr := make([]float64, len(col))
	var logSum float64
	for i, x := range col {
		x += shift
		tr[i] = boxCox(x, lambda)
		mean += tr[i]
		logSum += math.Log(x)
	}
	mean /= n
	var ss float64
	for _, v := range tr {
		ss += (v - mean) * (v - mean)
	}
	variance := ss / n
	if variance <= 0 {
		return math.Inf(-1)
	}
	return -n/2*math.Log(variance) + (lambda-1)*logSum
}

func (s *boxCoxScaler) Transform(row []float64) []float64 {
	out := make([]float64, len(row))
	if s.lambda == nil {
		copy(out, row)
		return out
	}
	for j, v := range row {
		x := v + s.shift[j]
		if x <= 0 {
			x = 1e-9
		}
		out[j] = boxCox(x, s.lambda[j])
	}
	return out
}
func (s *boxCoxScaler) Kind() Kind { return BoxCox }

// TransformAll applies a fitted scaler to every row.
func TransformAll(s Scaler, rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = s.Transform(r)
	}
	return out
}
