// Package baselines implements the comparison models from the paper's
// evaluation (§IV): a gradient-boosted regression-tree model (the XGBoost
// stand-in), a random-forest regressor, and a k-nearest-neighbors regressor
// over a KD-tree — plus the CART regression tree they share and the
// random-forest runtime predictor whose output feeds back into the Table II
// features. Everything trains on the same matrices the neural network sees.
package baselines

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Regressor is the common fit/predict interface all baselines implement.
type Regressor interface {
	// Fit trains on rows of X (samples) against y.
	Fit(X [][]float64, y []float64) error
	// Predict returns the model output for one feature vector.
	Predict(x []float64) float64
}

// BatchRegressor is implemented by regressors with a batched predict path
// (Forest and GBDT walk their flattened trees four rows in lockstep, which
// overlaps the per-level load latencies a one-row walk serializes).
type BatchRegressor interface {
	Regressor
	// PredictBatch fills out[i] with the prediction for X[i]; len(out)
	// must equal len(X). Results are bit-identical to calling Predict
	// per row.
	PredictBatch(X [][]float64, out []float64)
}

// PredictAll applies a regressor to every row, using the batched path
// when the regressor provides one.
func PredictAll(r Regressor, X [][]float64) []float64 {
	out := make([]float64, len(X))
	if br, ok := r.(BatchRegressor); ok {
		br.PredictBatch(X, out)
		return out
	}
	for i, x := range X {
		out[i] = r.Predict(x)
	}
	return out
}

// TreeConfig controls CART construction.
type TreeConfig struct {
	MaxDepth    int // 0 means 10
	MinLeaf     int // minimum samples per leaf; 0 means 5
	MaxFeatures int // features considered per split; 0 means all
	// MaxThresholds bounds candidate split points per feature in exact
	// mode (quantile candidates); 0 means 32.
	MaxThresholds int
	// Exact selects the original exact split search: per node and feature,
	// sort the node's rows and scan MaxThresholds quantile candidates. The
	// default (false) is histogram mode: features are quantized once per
	// Fit into at most Bins uint8 bins and splits are found by scanning
	// per-bin count/sum histograms with parent−sibling subtraction —
	// LightGBM-style, several times faster at equal quality. Exact mode
	// remains for bit-for-bit comparison against the pre-histogram learner.
	Exact bool
	// Bins is the histogram resolution per feature; 0 or >256 means 256.
	Bins int
	// Workers enables feature-parallel split search inside a single tree;
	// 0 or 1 is serial. Forests keep this at 1 (they parallelize across
	// trees); GBDT sets it because boosting rounds are sequential.
	Workers int
	Seed    int64
}

func (c *TreeConfig) defaults() {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 10
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 5
	}
	if c.MaxThresholds <= 0 {
		c.MaxThresholds = 32
	}
	if c.Bins <= 1 || c.Bins > maxBins {
		c.Bins = maxBins
	}
}

// treeNode is one node of a regression tree.
type treeNode struct {
	feature     int
	threshold   float64
	left, right *treeNode
	value       float64
	leaf        bool
}

// Tree is a CART regression tree minimizing within-node variance.
type Tree struct {
	Cfg  TreeConfig
	root *treeNode
	dim  int
	// flat is the SoA serving form, rebuilt from root after every fit and
	// gob load (see flat.go). Predict walks it; the pointer tree stays the
	// source of truth for training and serialization.
	flat *flatTree
}

// NewTree returns an untrained tree.
func NewTree(cfg TreeConfig) *Tree {
	cfg.defaults()
	return &Tree{Cfg: cfg}
}

// Fit implements Regressor.
func (t *Tree) Fit(X [][]float64, y []float64) error {
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("baselines: tree fit with %d samples, %d targets", len(X), len(y))
	}
	t.dim = len(X[0])
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(t.Cfg.Seed))
	if t.Cfg.Exact {
		t.root = t.build(X, y, idx, 0, newExactScratch(len(X), t.dim), rng)
	} else {
		sc := newHistScratch(newBinned(X, t.Cfg.Bins), y, t.Cfg.Workers)
		t.root = t.fitBinned(sc, idx, rng)
	}
	t.flat = flattenTree(t.root)
	return nil
}

// FitIndices trains on a subset of rows (used by bagging).
func (t *Tree) FitIndices(X [][]float64, y []float64, idx []int, rng *rand.Rand) error {
	if len(X) == 0 || len(X) != len(y) || len(idx) == 0 {
		return fmt.Errorf("baselines: tree fit with %d samples, %d indices", len(X), len(idx))
	}
	t.dim = len(X[0])
	own := append([]int(nil), idx...)
	if t.Cfg.Exact {
		t.root = t.build(X, y, own, 0, newExactScratch(len(idx), t.dim), rng)
	} else {
		sc := newHistScratch(newBinned(X, t.Cfg.Bins), y, t.Cfg.Workers)
		t.root = t.fitBinned(sc, own, rng)
	}
	t.flat = flattenTree(t.root)
	return nil
}

// fitShared trains on pre-binned features through a caller-owned scratch —
// the path Forest and GBDT use so quantization happens once per ensemble
// (per Fit) rather than once per tree. idx is copied; the scratch's target
// slice must already hold this tree's y.
func (t *Tree) fitShared(sc *histScratch, idx []int, rng *rand.Rand) error {
	if len(idx) == 0 {
		return fmt.Errorf("baselines: tree fit with 0 indices")
	}
	t.dim = sc.bm.cols
	own := append([]int(nil), idx...)
	t.root = t.fitBinned(sc, own, rng)
	t.flat = flattenTree(t.root)
	return nil
}

func mean(y []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

// exactPair is one (feature value, target) element of the exact-mode
// per-node sort.
type exactPair struct{ v, y float64 }

// exactScratch holds exact mode's per-node sort buffers, hoisted out of
// bestSplit so one Fit allocates them once instead of at every node (the
// allocation churn previously visible in BenchmarkForestFit).
type exactScratch struct {
	pairs []exactPair
	feats []int
}

func newExactScratch(rows, dim int) *exactScratch {
	return &exactScratch{pairs: make([]exactPair, rows), feats: make([]int, dim)}
}

// build recursively grows the tree (exact mode). idx is owned by the call
// and may be permuted.
func (t *Tree) build(X [][]float64, y []float64, idx []int, depth int, sc *exactScratch, rng *rand.Rand) *treeNode {
	if depth >= t.Cfg.MaxDepth || len(idx) < 2*t.Cfg.MinLeaf {
		return &treeNode{leaf: true, value: mean(y, idx)}
	}
	feat, thr, ok := t.bestSplit(X, y, idx, sc, rng)
	if !ok {
		return &treeNode{leaf: true, value: mean(y, idx)}
	}
	// Partition idx in place.
	lo, hi := 0, len(idx)
	for lo < hi {
		if X[idx[lo]][feat] <= thr {
			lo++
		} else {
			hi--
			idx[lo], idx[hi] = idx[hi], idx[lo]
		}
	}
	if lo < t.Cfg.MinLeaf || len(idx)-lo < t.Cfg.MinLeaf {
		return &treeNode{leaf: true, value: mean(y, idx)}
	}
	n := &treeNode{feature: feat, threshold: thr}
	n.left = t.build(X, y, idx[:lo], depth+1, sc, rng)
	n.right = t.build(X, y, idx[lo:], depth+1, sc, rng)
	return n
}

// bestSplit searches candidate thresholds for the split with the greatest
// variance reduction (exact mode: per-node, per-feature sort).
func (t *Tree) bestSplit(X [][]float64, y []float64, idx []int, sc *exactScratch, rng *rand.Rand) (feat int, thr float64, ok bool) {
	dim := t.dim
	feats := sc.feats[:dim]
	for i := range feats {
		feats[i] = i
	}
	if t.Cfg.MaxFeatures > 0 && t.Cfg.MaxFeatures < dim {
		rng.Shuffle(dim, func(i, j int) { feats[i], feats[j] = feats[j], feats[i] })
		feats = feats[:t.Cfg.MaxFeatures]
	}

	var totalSum, totalSq float64
	for _, i := range idx {
		totalSum += y[i]
		totalSq += y[i] * y[i]
	}
	n := float64(len(idx))
	baseSSE := totalSq - totalSum*totalSum/n

	bestGain := 1e-12
	ok = false

	pairs := sc.pairs[:len(idx)]
	for _, f := range feats {
		for k, i := range idx {
			pairs[k] = exactPair{X[i][f], y[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
		if pairs[0].v == pairs[len(pairs)-1].v {
			continue // constant feature
		}
		// Candidate thresholds at quantile positions.
		nCand := t.Cfg.MaxThresholds
		if nCand > len(pairs)-1 {
			nCand = len(pairs) - 1
		}
		// Prefix sums over the sorted order.
		var leftSum, leftSq float64
		leftN := 0
		cand := 1
		nextBoundary := func(c int) int { return c * len(pairs) / (nCand + 1) }
		boundary := nextBoundary(cand)
		for k := 0; k < len(pairs)-1; k++ {
			leftSum += pairs[k].y
			leftSq += pairs[k].y * pairs[k].y
			leftN++
			if k+1 < boundary {
				continue
			}
			for cand <= nCand && nextBoundary(cand) <= k+1 {
				cand++
			}
			boundary = nextBoundary(cand)
			if pairs[k].v == pairs[k+1].v {
				continue // cannot split between equal values
			}
			rightN := len(pairs) - leftN
			if leftN < t.Cfg.MinLeaf || rightN < t.Cfg.MinLeaf {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			sse := (leftSq - leftSum*leftSum/float64(leftN)) +
				(rightSq - rightSum*rightSum/float64(rightN))
			gain := baseSSE - sse
			if gain > bestGain {
				bestGain = gain
				feat = f
				// Midpoint between the adjacent sorted values. For values
				// one ulp apart (or huge values whose sum overflows) the
				// halved sum can round up to pairs[k+1].v itself, which
				// would leak the right-side row into the left partition
				// (v <= thr); clamp to the largest float below it. The
				// histogram learner is immune: its thresholds are exact
				// data values (bin upper edges), never midpoints.
				thr = (pairs[k].v + pairs[k+1].v) / 2
				if thr >= pairs[k+1].v {
					thr = math.Nextafter(pairs[k+1].v, math.Inf(-1))
				}
				ok = true
			}
		}
	}
	return feat, thr, ok
}

// Predict implements Regressor, serving from the flattened form (see
// flat.go). A NaN in any feature the walk consults yields a NaN
// prediction rather than silently routing right — poisoned inputs must
// surface so the serving fallback can catch them.
func (t *Tree) Predict(x []float64) float64 {
	if t.flat != nil {
		return t.flat.predict(x)
	}
	return t.predictNode(x)
}

// predictNode is the pointer-chasing reference walk, kept for the
// flat-vs-pointer bit-identity tests. Semantics match flatTree.predict
// exactly, including NaN propagation.
func (t *Tree) predictNode(x []float64) float64 {
	n := t.root
	if n == nil {
		return 0
	}
	for !n.leaf {
		v := x[n.feature]
		if v != v {
			return math.NaN()
		}
		if v <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the tree's height (for tests).
func (t *Tree) Depth() int {
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		if n == nil || n.leaf {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(t.root)
}

// NumLeaves returns the leaf count (for tests).
func (t *Tree) NumLeaves() int {
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		if n == nil {
			return 0
		}
		if n.leaf {
			return 1
		}
		return walk(n.left) + walk(n.right)
	}
	return walk(t.root)
}
