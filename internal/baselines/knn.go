package baselines

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// KNNConfig controls the k-nearest-neighbors regressor.
type KNNConfig struct {
	K int // 0 means 5
	// Standardize z-scores features before distance computation
	// (recommended; the queue features span wildly different scales).
	Standardize bool
}

// KNN is a KD-tree-backed k-nearest-neighbors regressor with Euclidean
// distance — one of the paper's published baselines (after Brown et al.).
type KNN struct {
	Cfg  KNNConfig
	tree *kdNode
	dim  int
	mean []float64
	std  []float64
	y    []float64
}

// NewKNN returns an untrained kNN model.
func NewKNN(cfg KNNConfig) *KNN {
	if cfg.K <= 0 {
		cfg.K = 5
	}
	return &KNN{Cfg: cfg}
}

// Fit implements Regressor.
func (k *KNN) Fit(X [][]float64, y []float64) error {
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("baselines: knn fit with %d samples, %d targets", len(X), len(y))
	}
	k.dim = len(X[0])
	k.y = append([]float64(nil), y...)

	pts := make([][]float64, len(X))
	if k.Cfg.Standardize {
		k.mean = make([]float64, k.dim)
		k.std = make([]float64, k.dim)
		for _, row := range X {
			for j, v := range row {
				k.mean[j] += v
			}
		}
		n := float64(len(X))
		for j := range k.mean {
			k.mean[j] /= n
		}
		for _, row := range X {
			for j, v := range row {
				d := v - k.mean[j]
				k.std[j] += d * d
			}
		}
		for j := range k.std {
			k.std[j] = math.Sqrt(k.std[j] / n)
			if k.std[j] == 0 {
				k.std[j] = 1
			}
		}
		for i, row := range X {
			pts[i] = k.normalize(row)
		}
	} else {
		for i, row := range X {
			pts[i] = append([]float64(nil), row...)
		}
	}
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	k.tree = buildKD(pts, idx, 0, k.dim)
	return nil
}

func (k *KNN) normalize(row []float64) []float64 {
	out := make([]float64, len(row))
	for j, v := range row {
		out[j] = (v - k.mean[j]) / k.std[j]
	}
	return out
}

// Predict implements Regressor: the mean target of the K nearest training
// points.
func (k *KNN) Predict(x []float64) float64 {
	if k.tree == nil {
		return 0
	}
	q := x
	if k.Cfg.Standardize {
		q = k.normalize(x)
	}
	h := &neighborHeap{}
	searchKD(k.tree, q, k.Cfg.K, 0, k.dim, h)
	if h.Len() == 0 {
		return 0
	}
	var s float64
	for _, nb := range *h {
		s += k.y[nb.idx]
	}
	return s / float64(h.Len())
}

// kdNode is a KD-tree node holding one point.
type kdNode struct {
	point       []float64
	idx         int
	left, right *kdNode
}

// buildKD builds a balanced KD-tree by median split on the cycling axis.
func buildKD(pts [][]float64, idx []int, depth, dim int) *kdNode {
	if len(idx) == 0 {
		return nil
	}
	axis := depth % dim
	sort.Slice(idx, func(a, b int) bool { return pts[idx[a]][axis] < pts[idx[b]][axis] })
	mid := len(idx) / 2
	n := &kdNode{point: pts[idx[mid]], idx: idx[mid]}
	n.left = buildKD(pts, idx[:mid], depth+1, dim)
	n.right = buildKD(pts, idx[mid+1:], depth+1, dim)
	return n
}

// neighbor is a candidate nearest point.
type neighbor struct {
	dist2 float64
	idx   int
}

// neighborHeap is a max-heap on distance so the worst of the current K best
// sits at the root.
type neighborHeap []neighbor

func (h neighborHeap) Len() int           { return len(h) }
func (h neighborHeap) Less(i, j int) bool { return h[i].dist2 > h[j].dist2 }
func (h neighborHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *neighborHeap) Push(x any)        { *h = append(*h, x.(neighbor)) }
func (h *neighborHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

func dist2(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// searchKD descends the tree, pruning subtrees whose bounding half-space
// cannot contain a closer point than the current K-th best.
func searchKD(n *kdNode, q []float64, k, depth, dim int, h *neighborHeap) {
	if n == nil {
		return
	}
	d2 := dist2(q, n.point)
	if h.Len() < k {
		heap.Push(h, neighbor{d2, n.idx})
	} else if d2 < (*h)[0].dist2 {
		heap.Pop(h)
		heap.Push(h, neighbor{d2, n.idx})
	}
	axis := depth % dim
	diff := q[axis] - n.point[axis]
	near, far := n.left, n.right
	if diff > 0 {
		near, far = far, near
	}
	searchKD(near, q, k, depth+1, dim, h)
	if h.Len() < k || diff*diff < (*h)[0].dist2 {
		searchKD(far, q, k, depth+1, dim, h)
	}
}
