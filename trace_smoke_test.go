// Trace smoke (make trace-smoke, part of make ci): run the serving stack
// with tracing fully on (head sampling 1.0, coalescing enabled) and
// validate every line the JSONL exporter wrote — IDs well-formed, parent
// references resolving within the line, children nested inside their
// parents' intervals, links structurally sound. Plus the acceptance pin:
// a slow (over-threshold) request exports one trace whose tree runs
// middleware → snapshot → coalesce (with a link to the shared flush) →
// batch stage spans, and the same trace ID is retrievable from
// GET /debug/requests.
package trout_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	trout "repro"
	"repro/internal/loadgen"
	"repro/internal/obs"
)

var hex16 = regexp.MustCompile(`^[0-9a-f]{16}$`)

// readTraceFile decodes every JSONL line of a trace export file.
func readTraceFile(t *testing.T, path string) []obs.TraceJSON {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open trace export: %v", err)
	}
	defer f.Close()
	var out []obs.TraceJSON
	scan := bufio.NewScanner(f)
	scan.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for scan.Scan() {
		var line obs.TraceJSON
		if err := json.Unmarshal(scan.Bytes(), &line); err != nil {
			t.Fatalf("non-JSON trace line %q: %v", scan.Text(), err)
		}
		out = append(out, line)
	}
	if err := scan.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// validateTraceLine enforces the export schema on one trace: well-formed
// IDs, in-line parent resolution, interval nesting, sound links.
func validateTraceLine(t *testing.T, line obs.TraceJSON) {
	t.Helper()
	if !hex16.MatchString(line.TraceID) {
		t.Fatalf("trace ID %q not 16-hex", line.TraceID)
	}
	if len(line.Spans) == 0 {
		t.Fatalf("trace %s exported with no spans", line.TraceID)
	}
	if line.DurationMs < 0 {
		t.Fatalf("trace %s duration %f < 0", line.TraceID, line.DurationMs)
	}
	byID := map[string]obs.SpanJSON{}
	for _, s := range line.Spans {
		if !hex16.MatchString(s.SpanID) {
			t.Fatalf("trace %s: span ID %q not 16-hex", line.TraceID, s.SpanID)
		}
		if _, dup := byID[s.SpanID]; dup {
			t.Fatalf("trace %s: duplicate span ID %s", line.TraceID, s.SpanID)
		}
		byID[s.SpanID] = s
	}
	roots := 0
	for _, s := range line.Spans {
		if s.Name == "" {
			t.Fatalf("trace %s: span %s unnamed", line.TraceID, s.SpanID)
		}
		if s.EndUnixNs < s.StartUnixNs {
			t.Fatalf("trace %s: span %s ends before it starts", line.TraceID, s.SpanID)
		}
		if s.ParentID == "" {
			roots++
			if s.Name != line.Root {
				t.Fatalf("trace %s: root span %q != line root %q", line.TraceID, s.Name, line.Root)
			}
		} else {
			p, ok := byID[s.ParentID]
			if !ok {
				t.Fatalf("trace %s: span %s parent %s not in line", line.TraceID, s.SpanID, s.ParentID)
			}
			if s.StartUnixNs < p.StartUnixNs || s.EndUnixNs > p.EndUnixNs {
				t.Fatalf("trace %s: span %s [%d,%d] escapes parent %s [%d,%d]",
					line.TraceID, s.SpanID, s.StartUnixNs, s.EndUnixNs,
					s.ParentID, p.StartUnixNs, p.EndUnixNs)
			}
		}
		if s.Link != nil {
			if s.Link.TraceID == "" || !hex16.MatchString(s.Link.SpanID) {
				t.Fatalf("trace %s: span %s malformed link %+v", line.TraceID, s.SpanID, *s.Link)
			}
		}
	}
	if roots != 1 {
		t.Fatalf("trace %s: %d parentless spans, want exactly 1", line.TraceID, roots)
	}
}

// TestTraceSmoke floods the coalescing serving stack with everything-
// sampled tracing and schema-checks the entire export file.
func TestTraceSmoke(t *testing.T) {
	e := sharedExperiment(t)
	bundle := resilientBundle(t)
	t.Cleanup(bundle.DisableFastInference)
	file := filepath.Join(t.TempDir(), "traces.jsonl")
	svc, err := trout.NewServiceWith(bundle, e.Trace, trout.ServiceConfig{
		FastInference: true,
		Coalesce:      true,
		Tracing:       obs.TracerConfig{SampleRate: 1, Path: file, QueueLen: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	sc, err := loadgen.Run(ctx, loadgen.Config{
		Handler:     svc.Handler(),
		Requests:    600,
		Concurrency: 8,
		Validate:    loadgen.StrictValidate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.ErrorRate != 0 {
		t.Fatalf("error rate %.4f with tracing on: %v", sc.ErrorRate, sc.InvalidSamples)
	}
	svc.Tracer().Flush()

	lines := readTraceFile(t, file)
	// Head sampling at 1.0 keeps every request; 600 requests plus flush
	// traces must all be here.
	if len(lines) < 600 {
		t.Fatalf("exported %d traces, want >= 600", len(lines))
	}
	var sawCoalesceLink, sawFlushRoot bool
	for _, line := range lines {
		validateTraceLine(t, line)
		if line.Root == "coalesce_flush" {
			sawFlushRoot = true
		}
		for _, s := range line.Spans {
			if s.Name == "coalesce" && s.Link != nil {
				sawCoalesceLink = true
			}
		}
	}
	if !sawFlushRoot {
		t.Fatal("no coalesce_flush root trace exported")
	}
	if !sawCoalesceLink {
		t.Fatal("no request trace carries a coalesce span linking to its flush")
	}
	if st := svc.Tracer().Stats(); st.ExportDropped > 0 {
		t.Logf("note: %d traces dropped at the export queue", st.ExportDropped)
	}
}

// TestTraceSlowRequestRecorded is the acceptance pin: with the slow
// threshold floored, a /predict request is tail-kept as slow, its
// exported tree runs middleware root → snapshot → coalesce (linked to
// the shared flush, whose own trace carries the batch stages), and the
// identical trace ID is retrievable from GET /debug/requests.
func TestTraceSlowRequestRecorded(t *testing.T) {
	const traceID = "cafe0123deadbeef"
	e := sharedExperiment(t)
	bundle := resilientBundle(t)
	t.Cleanup(bundle.DisableFastInference)
	file := filepath.Join(t.TempDir(), "traces.jsonl")
	svc, err := trout.NewServiceWith(bundle, e.Trace, trout.ServiceConfig{
		FastInference: true,
		Coalesce:      true,
		Tracing: obs.TracerConfig{
			SampleRate:    -1, // head sampling off: only the slow rule can export
			SlowThreshold: time.Nanosecond,
			Path:          file,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)

	at := e.Trace.Jobs[len(e.Trace.Jobs)-1].End + 100
	body := strings.NewReader(
		`{"at":` + jsonInt(at) + `,"job":{"user":3,"partition":"shared","req_cpus":8,"req_mem_gb":16,"req_nodes":1,"time_limit":7200,"priority":3000}}`)
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/predict", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceIDHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict = %d", resp.StatusCode)
	}
	svc.Tracer().Flush()

	lines := readTraceFile(t, file)
	var mine *obs.TraceJSON
	flushRoots := map[string]bool{}
	for i := range lines {
		validateTraceLine(t, lines[i])
		if lines[i].TraceID == traceID {
			mine = &lines[i]
		}
		if lines[i].Root == "coalesce_flush" {
			flushRoots[lines[i].TraceID] = true
		}
	}
	if mine == nil {
		t.Fatalf("slow request trace %s not exported; file has %d traces", traceID, len(lines))
	}
	names := map[string]obs.SpanJSON{}
	for _, s := range mine.Spans {
		names[s.Name] = s
	}
	if _, ok := names["POST /predict"]; !ok {
		t.Fatalf("no middleware root span: %v", spanNames(mine.Spans))
	}
	if _, ok := names["snapshot"]; !ok {
		t.Fatalf("no snapshot stage span: %v", spanNames(mine.Spans))
	}
	co, ok := names["coalesce"]
	if !ok || co.Link == nil {
		t.Fatalf("no coalesce span with a flush link: %v", spanNames(mine.Spans))
	}
	if !flushRoots[co.Link.TraceID] {
		t.Fatalf("coalesce links to flush trace %s, which was not exported", co.Link.TraceID)
	}
	if _, nn := names["batch_nn"]; !nn {
		if _, fb := names["fallback"]; !fb {
			t.Fatalf("neither batch_nn nor fallback stage span present: %v", spanNames(mine.Spans))
		}
	}

	// The same trace ID must be sitting in the flight recorder.
	dresp, err := http.Get(srv.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/requests = %d", dresp.StatusCode)
	}
	var dbg obs.DebugRequests
	if err := json.NewDecoder(dresp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	for _, rec := range dbg.Slowest {
		if rec.TraceID == traceID {
			if len(rec.Spans) == 0 {
				t.Fatal("recorded trace has no spans")
			}
			return
		}
	}
	t.Fatalf("trace %s not in /debug/requests slowest ring (%d entries)", traceID, len(dbg.Slowest))
}

func spanNames(spans []obs.SpanJSON) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

func jsonInt(v int64) string {
	return strconv.FormatInt(v, 10)
}
