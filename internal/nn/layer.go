package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Layer is one differentiable stage of a network. Forward consumes a batch
// (rows = samples) and returns the layer output; Backward consumes ∂L/∂out
// and returns ∂L/∂in, accumulating parameter gradients internally.
type Layer interface {
	// Forward runs the layer. train toggles training-only behaviour
	// (dropout masks, batch-norm batch statistics).
	Forward(in *tensor.Matrix, train bool) *tensor.Matrix
	// Backward propagates the output gradient to the input gradient.
	Backward(gradOut *tensor.Matrix) *tensor.Matrix
	// Params returns parameter/gradient pairs for the optimizer
	// (nil-safe: parameter-free layers return nothing).
	Params() []Param
	// OutDim reports the layer's output width given its input width.
	OutDim(inDim int) int
}

// Param couples a parameter matrix with its accumulated gradient.
type Param struct {
	Value *tensor.Matrix
	Grad  *tensor.Matrix
}

// Dense is a fully connected layer: out = in·W + b.
type Dense struct {
	In, Out int
	W       *tensor.Matrix // In x Out
	B       *tensor.Matrix // 1 x Out
	gradW   *tensor.Matrix
	gradB   *tensor.Matrix
	lastIn  *tensor.Matrix
}

// NewDense builds a dense layer with He initialization (appropriate for the
// ReLU/ELU family used throughout the paper's models).
func NewDense(in, out int, rng *rand.Rand) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid dense shape %d -> %d", in, out))
	}
	d := &Dense{
		In: in, Out: out,
		W:     tensor.New(in, out),
		B:     tensor.New(1, out),
		gradW: tensor.New(in, out),
		gradB: tensor.New(1, out),
	}
	d.W.HeInit(rng, in)
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(in *tensor.Matrix, train bool) *tensor.Matrix {
	if in.Cols != d.In {
		panic(fmt.Sprintf("nn: dense expected %d inputs, got %d", d.In, in.Cols))
	}
	// Backward-pass caches are only written in training mode, which keeps
	// inference forward passes read-only — Predict is safe to call from
	// concurrent goroutines (the serving path relies on this).
	if train {
		d.lastIn = in
	}
	out := tensor.MatMul(in, d.W)
	out.AddRowVector(d.B.Data)
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	// dW += inᵀ·gradOut ; db += colsum(gradOut) ; dIn = gradOut·Wᵀ
	tensor.AddInPlace(d.gradW, tensor.MatMul(d.lastIn.T(), gradOut))
	for j, s := range gradOut.ColSums() {
		d.gradB.Data[j] += s
	}
	return tensor.MatMulTransB(gradOut, d.W)
}

// Params implements Layer.
func (d *Dense) Params() []Param {
	return []Param{{d.W, d.gradW}, {d.B, d.gradB}}
}

// OutDim implements Layer.
func (d *Dense) OutDim(int) int { return d.Out }

// Activation applies an element-wise nonlinearity.
type Activation struct {
	Kind    ActivationKind
	lastIn  *tensor.Matrix
	lastOut *tensor.Matrix
}

// NewActivation returns an activation layer of the given kind.
func NewActivation(kind ActivationKind) *Activation {
	if !ValidActivation(kind) {
		panic(fmt.Sprintf("nn: unknown activation %q", kind))
	}
	return &Activation{Kind: kind}
}

// Forward implements Layer.
func (a *Activation) Forward(in *tensor.Matrix, train bool) *tensor.Matrix {
	out := tensor.New(in.Rows, in.Cols)
	for i, v := range in.Data {
		out.Data[i] = activate(a.Kind, v)
	}
	if train { // keep inference read-only (concurrent Predict)
		a.lastIn, a.lastOut = in, out
	}
	return out
}

// Backward implements Layer.
func (a *Activation) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(gradOut.Rows, gradOut.Cols)
	for i, g := range gradOut.Data {
		out.Data[i] = g * activateGrad(a.Kind, a.lastIn.Data[i], a.lastOut.Data[i])
	}
	return out
}

// Params implements Layer.
func (a *Activation) Params() []Param { return nil }

// OutDim implements Layer.
func (a *Activation) OutDim(in int) int { return in }

// Dropout zeroes a fraction Rate of activations during training and scales
// the survivors by 1/(1−Rate) (inverted dropout), so inference is a no-op.
type Dropout struct {
	Rate float64
	rng  *rand.Rand
	mask []float64
}

// NewDropout returns a dropout layer with the given drop probability.
func NewDropout(rate float64, rng *rand.Rand) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v out of [0,1)", rate))
	}
	return &Dropout{Rate: rate, rng: rng}
}

// Forward implements Layer.
func (d *Dropout) Forward(in *tensor.Matrix, train bool) *tensor.Matrix {
	if !train { // no state write: inference stays read-only
		return in
	}
	if d.Rate == 0 {
		d.mask = nil
		return in
	}
	keep := 1 - d.Rate
	scale := 1 / keep
	d.mask = make([]float64, len(in.Data))
	out := tensor.New(in.Rows, in.Cols)
	for i, v := range in.Data {
		if d.rng.Float64() < keep {
			d.mask[i] = scale
			out.Data[i] = v * scale
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if d.mask == nil {
		return gradOut
	}
	out := tensor.New(gradOut.Rows, gradOut.Cols)
	for i, g := range gradOut.Data {
		out.Data[i] = g * d.mask[i]
	}
	return out
}

// Params implements Layer.
func (d *Dropout) Params() []Param { return nil }

// OutDim implements Layer.
func (d *Dropout) OutDim(in int) int { return in }

// BatchNorm normalizes each feature over the batch and applies a learned
// scale (gamma) and shift (beta). The paper tested batch normalization on the
// regressor and rejected it; the layer exists for that ablation (A4).
type BatchNorm struct {
	Dim      int
	Gamma    *tensor.Matrix // 1 x Dim
	Beta     *tensor.Matrix // 1 x Dim
	Momentum float64
	Eps      float64
	// Running statistics used at inference time.
	RunMean []float64
	RunVar  []float64

	gradGamma *tensor.Matrix
	gradBeta  *tensor.Matrix
	lastXhat  *tensor.Matrix
	lastStd   []float64
}

// NewBatchNorm returns a batch-norm layer over dim features.
func NewBatchNorm(dim int) *BatchNorm {
	bn := &BatchNorm{
		Dim:       dim,
		Gamma:     tensor.New(1, dim),
		Beta:      tensor.New(1, dim),
		Momentum:  0.9,
		Eps:       1e-5,
		RunMean:   make([]float64, dim),
		RunVar:    make([]float64, dim),
		gradGamma: tensor.New(1, dim),
		gradBeta:  tensor.New(1, dim),
	}
	bn.Gamma.Fill(1)
	for j := range bn.RunVar {
		bn.RunVar[j] = 1
	}
	return bn
}

// Forward implements Layer.
func (b *BatchNorm) Forward(in *tensor.Matrix, train bool) *tensor.Matrix {
	if in.Cols != b.Dim {
		panic(fmt.Sprintf("nn: batchnorm expected %d features, got %d", b.Dim, in.Cols))
	}
	var mean, variance []float64
	if train && in.Rows > 1 {
		mean = in.ColMeans()
		variance = in.ColVariances(mean)
		for j := range mean {
			b.RunMean[j] = b.Momentum*b.RunMean[j] + (1-b.Momentum)*mean[j]
			b.RunVar[j] = b.Momentum*b.RunVar[j] + (1-b.Momentum)*variance[j]
		}
	} else {
		mean, variance = b.RunMean, b.RunVar
	}
	std := make([]float64, b.Dim)
	for j := range std {
		std[j] = math.Sqrt(variance[j] + b.Eps)
	}
	xhat := tensor.New(in.Rows, in.Cols)
	out := tensor.New(in.Rows, in.Cols)
	for i := 0; i < in.Rows; i++ {
		row := in.Row(i)
		xr := xhat.Row(i)
		or := out.Row(i)
		for j, v := range row {
			xr[j] = (v - mean[j]) / std[j]
			or[j] = b.Gamma.Data[j]*xr[j] + b.Beta.Data[j]
		}
	}
	if train { // keep inference read-only (concurrent Predict)
		b.lastXhat, b.lastStd = xhat, std
	}
	return out
}

// Backward implements Layer. Uses the standard batch-norm gradient with
// batch statistics (valid for the training path).
func (b *BatchNorm) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	n := float64(gradOut.Rows)
	out := tensor.New(gradOut.Rows, gradOut.Cols)
	// Per-column sums of g and g*xhat.
	sumG := make([]float64, b.Dim)
	sumGX := make([]float64, b.Dim)
	for i := 0; i < gradOut.Rows; i++ {
		gr := gradOut.Row(i)
		xr := b.lastXhat.Row(i)
		for j, g := range gr {
			sumG[j] += g
			sumGX[j] += g * xr[j]
		}
	}
	for j := 0; j < b.Dim; j++ {
		b.gradGamma.Data[j] += sumGX[j]
		b.gradBeta.Data[j] += sumG[j]
	}
	for i := 0; i < gradOut.Rows; i++ {
		gr := gradOut.Row(i)
		xr := b.lastXhat.Row(i)
		or := out.Row(i)
		for j, g := range gr {
			or[j] = (b.Gamma.Data[j] / b.lastStd[j]) * (g - sumG[j]/n - xr[j]*sumGX[j]/n)
		}
	}
	return out
}

// Params implements Layer.
func (b *BatchNorm) Params() []Param {
	return []Param{{b.Gamma, b.gradGamma}, {b.Beta, b.gradBeta}}
}

// OutDim implements Layer.
func (b *BatchNorm) OutDim(in int) int { return in }
