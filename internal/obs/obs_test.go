package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestSanitizeTraceID(t *testing.T) {
	cases := []struct{ in, want string }{
		{"abc123", "abc123"},
		{"req-42_x.y", "req-42_x.y"},
		{"", ""},
		{"has space", ""},
		{"quote\"id", ""},
		{`back\slash`, ""},
		{"tab\tid", ""},
		{strings.Repeat("a", 65), ""},
		{strings.Repeat("a", 64), strings.Repeat("a", 64)},
	}
	for _, c := range cases {
		if got := SanitizeTraceID(c.in); got != c.want {
			t.Errorf("SanitizeTraceID(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("trace IDs %q, %q: want 16 hex chars", a, b)
	}
	if a == b {
		t.Errorf("two trace IDs collided: %q", a)
	}
	if SanitizeTraceID(a) != a {
		t.Errorf("generated ID %q fails its own sanitizer", a)
	}
}

func TestSpansNilSafe(t *testing.T) {
	var sp *Spans
	sp.Observe("x", 1)
	sp.Time("y")()
	if got := sp.Snapshot(); got != nil {
		t.Errorf("nil Spans snapshot = %v", got)
	}
	if got := SpansFrom(context.Background()); got != nil {
		t.Errorf("SpansFrom(empty ctx) = %v", got)
	}
	if got := TraceIDFrom(context.Background()); got != "" {
		t.Errorf("TraceIDFrom(empty ctx) = %q", got)
	}
}

func TestSpansRecord(t *testing.T) {
	sp := &Spans{}
	sp.Observe(StageSnapshot, 0.001)
	done := sp.Time(StageClassify)
	done()
	got := sp.Snapshot()
	if len(got) != 2 || got[0].Stage != StageSnapshot || got[1].Stage != StageClassify {
		t.Fatalf("spans = %+v", got)
	}
	if got[1].Seconds < 0 {
		t.Errorf("negative span duration %v", got[1].Seconds)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "": slog.LevelInfo, "info": slog.LevelInfo,
		"WARN": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) should fail")
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hello", slog.String("k", "v"))
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "hello" || rec["k"] != "v" {
		t.Errorf("record = %v", rec)
	}
	l.Debug("hidden")
	if strings.Contains(buf.String(), "hidden") {
		t.Error("debug line emitted at info level")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Error("NewLogger(xml) should fail")
	}
	if _, err := NewLogger(&buf, "info", "text"); err != nil {
		t.Errorf("text format: %v", err)
	}
}

func TestLogf(t *testing.T) {
	if Logf(nil) != nil {
		t.Error("Logf(nil) should be nil")
	}
	var buf bytes.Buffer
	l, _ := NewLogger(&buf, "info", "json")
	Logf(l)("count=%d", 7)
	if !strings.Contains(buf.String(), "count=7") {
		t.Errorf("logf output: %s", buf.String())
	}
}

func TestInstrument(t *testing.T) {
	r := NewRegistry()
	reqs := r.CounterVec("test_http_requests_total", "Reqs.", "path", "code")
	lat := r.Histogram("test_http_seconds", "Lat.", DefaultLatencyBuckets)
	stages := r.HistogramVec("test_stage_seconds", "Stage.", DefaultStageBuckets, "stage")
	var buf bytes.Buffer
	logger, _ := NewLogger(&buf, "info", "json")

	var seenID string
	h := Instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seenID = TraceIDFrom(r.Context())
		SpansFrom(r.Context()).Observe(StageClassify, 0.002)
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("short and stout"))
	}), HTTPOptions{Logger: logger, Requests: reqs, Latency: lat, StageLatency: stages})

	// Client-supplied well-formed ID is honoured.
	req := httptest.NewRequest("GET", "/predict", nil)
	req.Header.Set(TraceIDHeader, "client-id-1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seenID != "client-id-1" {
		t.Errorf("handler saw trace ID %q, want client-id-1", seenID)
	}
	if got := rec.Header().Get(TraceIDHeader); got != "client-id-1" {
		t.Errorf("response header %q, want client-id-1", got)
	}
	var logRec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &logRec); err != nil {
		t.Fatalf("access log not JSON: %v\n%s", err, buf.String())
	}
	if logRec["trace_id"] != "client-id-1" {
		t.Errorf("log trace_id = %v", logRec["trace_id"])
	}
	if logRec["status"] != float64(http.StatusTeapot) {
		t.Errorf("log status = %v", logRec["status"])
	}
	spans, ok := logRec["spans"].(map[string]any)
	if !ok || spans[StageClassify] == nil {
		t.Errorf("log spans = %v", logRec["spans"])
	}
	if logRec["bytes"] != float64(len("short and stout")) {
		t.Errorf("log bytes = %v, want %d", logRec["bytes"], len("short and stout"))
	}
	if remote, _ := logRec["remote"].(string); remote == "" || remote != req.RemoteAddr {
		t.Errorf("log remote = %v, want %q", logRec["remote"], req.RemoteAddr)
	}

	// Malformed ID is replaced with a generated one.
	req = httptest.NewRequest("GET", "/predict", nil)
	req.Header.Set(TraceIDHeader, "bad id with spaces")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	got := rec.Header().Get(TraceIDHeader)
	if got == "" || got == "bad id with spaces" {
		t.Errorf("malformed ID not replaced: %q", got)
	}
	if seenID != got {
		t.Errorf("handler ID %q != response header %q", seenID, got)
	}

	// Metrics recorded.
	if snap := reqs.Snapshot(); snap["/predict,418"] != 2 {
		t.Errorf("request counter = %v", snap)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `test_stage_seconds_count{stage="classify"} 2`) {
		t.Errorf("stage histogram missing:\n%s", b.String())
	}
}

func TestAccuracyTracker(t *testing.T) {
	tr := NewAccuracyTracker(10, 4, 8)

	// Unmatched start.
	if tr.Resolve(99, 0, 600) {
		t.Error("resolve of unknown job should be false")
	}

	// Correct long prediction: predicted 30 min long, actual 20 min (>= 10 cutoff).
	tr.Record(1, 0.9, 30, true)
	if !tr.Resolve(1, 1000, 1000+20*60) {
		t.Fatal("resolve failed")
	}
	// Correct short prediction: actual 0 queue.
	tr.Record(2, 0.1, 0, false)
	tr.Resolve(2, 2000, 2000)
	// Miss: predicted short, actually queued 50 min.
	tr.Record(3, 0.2, 0, false)
	tr.Resolve(3, 3000, 3000+50*60)

	st := tr.Stats()
	if st.Joined != 3 || st.Window != 3 || st.Unmatched != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got, want := st.HitRate, 2.0/3.0; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("hit rate = %v, want %v", got, want)
	}
	if st.RegressionObbs != 1 || st.MAEMinutes != 10 {
		t.Errorf("regression stats = %+v", st)
	}
	// |30-20|/20 = 0.5 → 50%.
	if st.MAPE < 49.9 || st.MAPE > 50.1 {
		t.Errorf("MAPE = %v", st.MAPE)
	}
	// mean prob (0.9+0.1+0.2)/3 = 0.4; long fraction 2/3.
	drift := 0.4 - 2.0/3.0
	if st.CalibrationDrift < drift-1e-9 || st.CalibrationDrift > drift+1e-9 {
		t.Errorf("calibration drift = %v, want %v", st.CalibrationDrift, drift)
	}

	// Negative queue clamps to zero.
	tr.Record(4, 0.5, 5, true)
	tr.Resolve(4, 5000, 4000)
	if st := tr.Stats(); st.Window != 4 {
		t.Fatalf("window = %d", st.Window)
	}
}

func TestAccuracyTrackerEviction(t *testing.T) {
	tr := NewAccuracyTracker(10, 3, 8)
	for id := 1; id <= 5; id++ {
		tr.Record(id, 0.5, 1, true)
	}
	st := tr.Stats()
	if st.Pending != 3 {
		t.Errorf("pending = %d, want 3 (cap)", st.Pending)
	}
	if st.Evicted != 2 {
		t.Errorf("evicted = %d, want 2", st.Evicted)
	}
	// Oldest two were dropped; newest three still resolvable.
	if tr.Resolve(1, 0, 60) || tr.Resolve(2, 0, 60) {
		t.Error("evicted jobs should not resolve")
	}
	for id := 3; id <= 5; id++ {
		if !tr.Resolve(id, 0, 60) {
			t.Errorf("job %d should resolve", id)
		}
	}
}

func TestAccuracyTrackerWindowWrap(t *testing.T) {
	tr := NewAccuracyTracker(10, 0, 4)
	for id := 1; id <= 10; id++ {
		tr.Record(id, 1.0, 20, true)
		tr.Resolve(id, 0, 20*60) // perfect predictions
	}
	st := tr.Stats()
	if st.Window != 4 || st.Joined != 10 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate != 1 || st.MAEMinutes != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAccuracyTrackerNilAndIgnored(t *testing.T) {
	var tr *AccuracyTracker
	tr.Record(1, 0.5, 1, true)
	if tr.Resolve(1, 0, 0) {
		t.Error("nil tracker resolve = true")
	}
	if st := tr.Stats(); st.Window != 0 {
		t.Errorf("nil tracker stats = %+v", st)
	}
	real := NewAccuracyTracker(10, 4, 4)
	real.Record(0, 0.5, 1, true)  // hypothetical job, no ID
	real.Record(-7, 0.5, 1, true) // invalid
	if st := real.Stats(); st.Pending != 0 {
		t.Errorf("pending = %d, want 0", st.Pending)
	}
}

func TestAccuracyTrackerRegister(t *testing.T) {
	r := NewRegistry()
	tr := NewAccuracyTracker(10, 0, 0)
	tr.Register(r)
	tr.Record(1, 0.8, 15, true)
	tr.Resolve(1, 0, 15*60)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, w := range []string{
		"trout_online_joined_total 1",
		"trout_online_hit_rate 1",
		"trout_online_mae_minutes 0",
		"trout_online_window_size 1",
		"trout_online_pending_predictions 0",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("missing %q in:\n%s", w, out)
		}
	}
}

func TestTrainTelemetry(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	logger, _ := NewLogger(&buf, "info", "json")
	tt := NewTrainTelemetry(r, logger)

	tt.ObserveEpoch("classifier", 3, 0.5, 0.6, 1.2, 0.01)
	tt.ObserveEpoch("classifier", 4, 0.4, 0.55, 1.1, 0.01)
	tt.ObserveRollback("regressor", 7, 1, 0.005)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, w := range []string{
		`trout_train_loss{head="classifier"} 0.4`,
		`trout_train_epochs_total{head="classifier"} 2`,
		`trout_train_rollbacks_total{head="regressor"} 1`,
		`trout_train_grad_norm{head="classifier"} 1.1`,
		`trout_train_learning_rate{head="classifier"} 0.01`,
	} {
		if !strings.Contains(out, w) {
			t.Errorf("missing %q in:\n%s", w, out)
		}
	}
	if !strings.Contains(buf.String(), "train_epoch") || !strings.Contains(buf.String(), "train_rollback") {
		t.Errorf("log lines missing:\n%s", buf.String())
	}

	// Nil receiver is a no-op.
	var nilT *TrainTelemetry
	nilT.ObserveEpoch("x", 0, 0, 0, 0, 0)
	nilT.ObserveRollback("x", 0, 0, 0)
}
