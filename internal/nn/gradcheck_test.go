package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// Finite-difference gradient checks: for every parameter θ of a network the
// analytic gradient from BackwardTrain must match the central difference
// (L(θ+h) − L(θ−h)) / 2h of the training-path loss. Dropout is excluded
// (its RNG makes the loss non-deterministic across evaluations) and the
// activations are kink-free (ELU, sigmoid, tanh); batch-norm running-stat
// updates during repeated forwards are harmless because the training output
// uses batch statistics.

// gradCheckLoss evaluates the loss through the workspace forward path
// without touching gradients.
func gradCheckLoss(net *Network, ws *TrainWorkspace, x, y *tensor.Matrix, kind LossKind) float64 {
	pred := net.ForwardTrain(ws, x)
	return LossInto(kind, pred, y, &ws.grad)
}

// checkGradients compares analytic and numeric gradients for every scalar
// parameter of net on one batch.
func checkGradients(t *testing.T, net *Network, x, y *tensor.Matrix, kind LossKind) {
	t.Helper()
	ws := net.NewTrainWorkspace()
	params := net.Params()
	zeroGrads(params)
	pred := net.ForwardTrain(ws, x)
	LossInto(kind, pred, y, &ws.grad)
	net.BackwardTrain(ws, &ws.grad)

	analytic := make([][]float64, len(params))
	for i, p := range params {
		analytic[i] = append([]float64(nil), p.Grad.Data...)
	}
	zeroGrads(params)

	const h = 1e-5
	const tol = 1e-5
	for i, p := range params {
		for k := range p.Value.Data {
			orig := p.Value.Data[k]
			p.Value.Data[k] = orig + h
			lPlus := gradCheckLoss(net, ws, x, y, kind)
			p.Value.Data[k] = orig - h
			lMinus := gradCheckLoss(net, ws, x, y, kind)
			p.Value.Data[k] = orig
			numeric := (lPlus - lMinus) / (2 * h)
			got := analytic[i][k]
			if diff := math.Abs(got - numeric); diff > tol*(1+math.Abs(got)+math.Abs(numeric)) {
				t.Errorf("%s: param %d elem %d: analytic %.10g vs numeric %.10g (diff %.3g)",
					kind, i, k, got, numeric, diff)
			}
		}
	}
}

func gradCheckBatch(seed int64, rows, in, out int, binary bool) (*tensor.Matrix, *tensor.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(rows, in)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	y := tensor.New(rows, out)
	for i := range y.Data {
		if binary {
			y.Data[i] = float64(rng.Intn(2))
		} else {
			y.Data[i] = rng.NormFloat64()
		}
	}
	return x, y
}

// TestGradCheckDense: plain dense stack with ELU hidden, MSE loss.
func TestGradCheckDense(t *testing.T) {
	net := NewNetwork(rand.New(rand.NewSource(61)),
		DenseSpec(6, 10), ActivationSpec(ELU),
		DenseSpec(10, 4), ActivationSpec(Tanh),
		DenseSpec(4, 1))
	x, y := gradCheckBatch(62, 9, 6, 1, false)
	checkGradients(t, net, x, y, MSE)
}

// TestGradCheckBatchNorm: batch-norm gradients (gamma, beta, and the input
// gradient flowing into the dense layer below) against finite differences.
func TestGradCheckBatchNorm(t *testing.T) {
	net := NewNetwork(rand.New(rand.NewSource(63)),
		DenseSpec(5, 8), BatchNormSpec(8), ActivationSpec(ELU),
		DenseSpec(8, 1))
	x, y := gradCheckBatch(64, 11, 5, 1, false)
	checkGradients(t, net, x, y, MSE)
}

// TestGradCheckLosses: every named loss against finite differences through
// the same dense/ELU network (sigmoid head for BCE so predictions live in
// (0,1); regression targets keep |pred−target| away from MAE's kink at 0
// and smooth-L1's knee at |d|=1 with probability 1 for generic floats).
func TestGradCheckLosses(t *testing.T) {
	for _, tc := range []struct {
		kind   LossKind
		binary bool
	}{
		{MSE, false}, {MAE, false}, {SmoothL1, false}, {BCE, true},
	} {
		t.Run(string(tc.kind), func(t *testing.T) {
			specs := []LayerSpec{
				DenseSpec(4, 7), ActivationSpec(ELU),
				DenseSpec(7, 1),
			}
			if tc.kind == BCE {
				specs = append(specs, ActivationSpec(Sigmoid))
			}
			net := NewNetwork(rand.New(rand.NewSource(65)), specs...)
			x, y := gradCheckBatch(66, 10, 4, 1, tc.binary)
			checkGradients(t, net, x, y, tc.kind)
		})
	}
}
