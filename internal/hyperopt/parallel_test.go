package hyperopt

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// noisyObjective derives its own randomness from the trial ID, the way real
// training objectives seed their model from cfg.Seed + trial ID — any
// order-dependence in the scheduler would show up as a score mismatch.
func noisyObjective(tr *Trial, budget int) float64 {
	rng := rand.New(rand.NewSource(int64(tr.ID) * 7919))
	d := tr.Float("x") - 3
	return d*d + rng.Float64()*0.01/float64(budget)
}

func sameResult(t *testing.T, a, b Result) {
	t.Helper()
	if a.Best.ID != b.Best.ID || a.Best.Score != b.Best.Score {
		t.Fatalf("best differs: serial #%d %v vs parallel #%d %v",
			a.Best.ID, a.Best.Score, b.Best.ID, b.Best.Score)
	}
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		x, y := a.Trials[i], b.Trials[i]
		if x.ID != y.ID || x.Score != y.Score || x.Pruned != y.Pruned || x.Budget != y.Budget {
			t.Fatalf("trial %d differs: %+v vs %+v", i, x, y)
		}
		for k, v := range x.Floats {
			if y.Floats[k] != v {
				t.Fatalf("trial %d param %s: %v vs %v", i, k, v, y.Floats[k])
			}
		}
	}
}

// TestParallelSearchBitIdenticalToSerial is the contract the service's
// tuning path relies on: Workers > 1 must return exactly the serial result
// for a fixed seed — same sampled configurations, same scores, same
// pruning, same winner.
func TestParallelSearchBitIdenticalToSerial(t *testing.T) {
	for _, halving := range []bool{false, true} {
		serial := Config{Trials: 40, Seed: 17, Halving: halving, MinBudget: 1, MaxBudget: 9, Eta: 3}
		parallel := serial
		parallel.Workers = 8
		a, err := Search(serial, quadSpace(), noisyObjective)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Search(parallel, quadSpace(), noisyObjective)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, a, b)
	}
}

// TestParallelActuallyFansOut: with Workers=4 the evaluation loop must have
// more than one goroutine in flight at least once (on a multicore box).
func TestParallelActuallyFansOut(t *testing.T) {
	var inFlight, peak int64
	obj := func(tr *Trial, budget int) float64 {
		n := atomic.AddInt64(&inFlight, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
				break
			}
		}
		for i := 0; i < 10000; i++ { // give workers a chance to overlap
			_ = i * i
		}
		atomic.AddInt64(&inFlight, -1)
		return tr.Float("x")
	}
	if _, err := Search(Config{Trials: 64, Seed: 5, Workers: 4}, []Param{Uniform("x", 0, 1)}, obj); err != nil {
		t.Fatal(err)
	}
	// On a single-core runner overlap is not guaranteed; only assert that
	// the pool never exceeded its worker budget.
	if p := atomic.LoadInt64(&peak); p > 4 {
		t.Fatalf("peak in-flight evaluations %d exceeds Workers=4", p)
	}
}

// TestHalvingParallelRungBudgets: parallel halving still walks the same
// budget ladder and the winner reaches MaxBudget.
func TestHalvingParallelRungBudgets(t *testing.T) {
	res, err := Search(Config{
		Trials: 27, Seed: 4, Workers: 5, Halving: true, MinBudget: 1, MaxBudget: 9, Eta: 3,
	}, []Param{Uniform("x", 0, 1)}, func(tr *Trial, budget int) float64 {
		return tr.Float("x")
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Budget != 9 {
		t.Fatalf("best budget %d, want 9", res.Best.Budget)
	}
	pruned := 0
	for _, tr := range res.Trials {
		if tr.Pruned {
			pruned++
		}
	}
	if pruned == 0 {
		t.Fatal("parallel halving pruned nothing")
	}
}
