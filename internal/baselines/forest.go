package baselines

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Compile-time interface checks for the ensemble learners.
var (
	_ Regressor = (*Tree)(nil)
	_ Regressor = (*Forest)(nil)
	_ Regressor = (*GBDT)(nil)
)

// ForestConfig controls random-forest construction.
type ForestConfig struct {
	Trees int // 0 means 100
	Tree  TreeConfig
	// SampleFraction is the bootstrap size relative to the dataset;
	// 0 means 1.0 (classic bootstrap with replacement).
	SampleFraction float64
	// Workers bounds parallel tree construction; 0 means GOMAXPROCS.
	Workers int
	Seed    int64
}

func (c *ForestConfig) defaults(dim int) {
	if c.Trees <= 0 {
		c.Trees = 100
	}
	if c.SampleFraction <= 0 {
		c.SampleFraction = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	c.Tree.defaults()
	if c.Tree.MaxFeatures <= 0 {
		// Regression default: d/3, at least 1.
		c.Tree.MaxFeatures = dim / 3
		if c.Tree.MaxFeatures < 1 {
			c.Tree.MaxFeatures = 1
		}
	}
}

// Forest is a bagged ensemble of regression trees, built in parallel — the
// paper uses it both as a queue-time baseline and as the runtime predictor
// whose output becomes a feature.
type Forest struct {
	Cfg   ForestConfig
	trees []*Tree
	// ens is the concatenated flat serving form of all trees, rebuilt
	// after every Fit and gob load (see flat.go).
	ens *flatEnsemble
}

// NewForest returns an untrained forest.
func NewForest(cfg ForestConfig) *Forest { return &Forest{Cfg: cfg} }

// Fit implements Regressor. Trees train concurrently on bootstrap samples;
// per-tree RNGs are seeded deterministically so results are reproducible
// regardless of worker interleaving. In histogram mode (the default) the
// feature matrix is quantized once here and shared read-only by every tree,
// so the per-feature sort cost is paid once per forest instead of once per
// node; each worker keeps its own histogram scratch.
func (f *Forest) Fit(X [][]float64, y []float64) error {
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("baselines: forest fit with %d samples, %d targets", len(X), len(y))
	}
	f.Cfg.defaults(len(X[0]))
	n := len(X)
	sampleN := int(f.Cfg.SampleFraction * float64(n))
	if sampleN < 1 {
		sampleN = 1
	}
	var bm *binned
	if !f.Cfg.Tree.Exact {
		bm = newBinned(X, f.Cfg.Tree.Bins)
	}
	f.trees = make([]*Tree, f.Cfg.Trees)
	sem := make(chan struct{}, f.Cfg.Workers)
	var wg sync.WaitGroup
	errs := make([]error, f.Cfg.Trees)
	// One histogram scratch per worker slot, reused across the trees that
	// slot trains (the free-listed node histograms are the big buffers).
	scratch := make(chan *histScratch, f.Cfg.Workers)
	for w := 0; w < f.Cfg.Workers; w++ {
		if bm != nil {
			scratch <- newHistScratch(bm, y, 1)
		}
	}
	for ti := 0; ti < f.Cfg.Trees; ti++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(ti int) {
			defer wg.Done()
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(f.Cfg.Seed + int64(ti)*7919))
			idx := make([]int, sampleN)
			for k := range idx {
				idx[k] = rng.Intn(n)
			}
			tcfg := f.Cfg.Tree
			tcfg.Seed = f.Cfg.Seed + int64(ti)
			tcfg.Workers = 1 // trees already run in parallel
			tree := NewTree(tcfg)
			if bm != nil {
				sc := <-scratch
				errs[ti] = tree.fitShared(sc, idx, rng)
				scratch <- sc
			} else {
				errs[ti] = tree.FitIndices(X, y, idx, rng)
			}
			f.trees[ti] = tree
		}(ti)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	f.ens = newFlatEnsemble(f.trees)
	return nil
}

// Predict implements Regressor: the mean of tree predictions. NaN-free
// rows take the eight-lane ensemble walk; rows with a NaN go through the
// per-tree scalar walk, which implements the consulted-feature NaN
// contract. Both produce bit-identical results.
func (f *Forest) Predict(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	if f.ens != nil && !rowHasNaN(x) {
		return f.ens.addRow(x, 1, 0) / float64(len(f.trees))
	}
	var s float64
	for _, t := range f.trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.trees))
}

// PredictBatch implements BatchRegressor; predictions are bit-identical
// to per-row Predict. Batches take the group-outer addBatch walk (better
// node locality than per-row addRow); rows containing NaN are recomputed
// through the scalar chain afterwards.
func (f *Forest) PredictBatch(X [][]float64, out []float64) {
	if f.ens == nil {
		for i, x := range X {
			out[i] = f.Predict(x)
		}
		return
	}
	for i := range out {
		out[i] = 0
	}
	f.ens.addBatch(X, 1, out)
	inv := float64(len(f.trees))
	for i := range out {
		out[i] /= inv
	}
	for i, x := range X {
		if rowHasNaN(x) {
			out[i] = f.Predict(x)
		}
	}
}

// GBDTConfig controls gradient-boosted tree construction — the stand-in for
// the paper's XGBoost baseline.
type GBDTConfig struct {
	Rounds    int     // boosting rounds; 0 means 100
	LearnRate float64 // shrinkage; 0 means 0.1
	Tree      TreeConfig
	// SubsampleFraction of rows per round (stochastic gradient boosting);
	// 0 means 1.0.
	SubsampleFraction float64
	Seed              int64
}

func (c *GBDTConfig) defaults() {
	if c.Rounds <= 0 {
		c.Rounds = 100
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 0.1
	}
	if c.SubsampleFraction <= 0 {
		c.SubsampleFraction = 1
	}
	if c.Tree.MaxDepth <= 0 {
		c.Tree.MaxDepth = 4
	}
	c.Tree.defaults()
}

// GBDT is gradient boosting with squared loss over shallow CART trees.
type GBDT struct {
	Cfg   GBDTConfig
	base  float64
	trees []*Tree
	// ens is the concatenated flat serving form of all trees, rebuilt
	// after every Fit and gob load (see flat.go).
	ens *flatEnsemble
}

// NewGBDT returns an untrained booster.
func NewGBDT(cfg GBDTConfig) *GBDT { return &GBDT{Cfg: cfg} }

// Fit implements Regressor. Boosting rounds are inherently sequential
// (each tree fits the previous ensemble's residuals), so throughput comes
// from inside a round: features are quantized once up front and every
// round's tree trains on the shared bins through one reused scratch, split
// search fans out across features, and the per-row prediction update after
// each tree runs row-parallel. Results are independent of worker count.
func (g *GBDT) Fit(X [][]float64, y []float64) error {
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("baselines: gbdt fit with %d samples, %d targets", len(X), len(y))
	}
	g.Cfg.defaults()
	n := len(X)
	var s float64
	for _, v := range y {
		s += v
	}
	g.base = s / float64(n)

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = g.base
	}
	resid := make([]float64, n)
	rng := rand.New(rand.NewSource(g.Cfg.Seed))
	g.trees = g.trees[:0]
	sampleN := int(g.Cfg.SubsampleFraction * float64(n))
	if sampleN < 1 {
		sampleN = 1
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	var sc *histScratch
	if !g.Cfg.Tree.Exact {
		workers := g.Cfg.Tree.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		sc = newHistScratch(newBinned(X, g.Cfg.Tree.Bins), resid, workers)
	}
	for round := 0; round < g.Cfg.Rounds; round++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		idx := all
		if sampleN < n {
			rng.Shuffle(n, func(i, j int) { all[i], all[j] = all[j], all[i] })
			idx = all[:sampleN]
		}
		tcfg := g.Cfg.Tree
		tcfg.Seed = g.Cfg.Seed + int64(round)
		if sc != nil {
			tcfg.Workers = sc.workers
		}
		tree := NewTree(tcfg)
		if sc != nil {
			if err := tree.fitShared(sc, idx, rng); err != nil {
				return err
			}
		} else if err := tree.FitIndices(X, resid, idx, rng); err != nil {
			return err
		}
		g.trees = append(g.trees, tree)
		parallelPredictAdd(pred, X, tree, g.Cfg.LearnRate)
	}
	g.ens = newFlatEnsemble(g.trees)
	return nil
}

// parallelPredictAdd computes pred[i] += rate*tree.Predict(X[i]) across all
// rows, fanning out over GOMAXPROCS when the trace is large enough for the
// goroutine cost to vanish. Rows are independent, so the result is
// identical at any worker count.
func parallelPredictAdd(pred []float64, X [][]float64, tree *Tree, rate float64) {
	workers := runtime.GOMAXPROCS(0)
	const minRowsPerWorker = 2048
	if maxW := len(pred) / minRowsPerWorker; workers > maxW {
		workers = maxW
	}
	if workers < 2 {
		if tree.flat != nil {
			tree.flat.addMany(X, rate, pred)
		} else {
			for i := range pred {
				pred[i] += rate * tree.Predict(X[i])
			}
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(pred) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pred) {
			hi = len(pred)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if tree.flat != nil {
				tree.flat.addMany(X[lo:hi], rate, pred[lo:hi])
				return
			}
			for i := lo; i < hi; i++ {
				pred[i] += rate * tree.Predict(X[i])
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Predict implements Regressor. NaN-free rows take the eight-lane
// ensemble walk; rows with a NaN go through the per-tree scalar walk,
// which implements the consulted-feature NaN contract. Both produce
// bit-identical results.
func (g *GBDT) Predict(x []float64) float64 {
	if g.ens != nil && !rowHasNaN(x) {
		return g.ens.addRow(x, g.Cfg.LearnRate, g.base)
	}
	out := g.base
	for _, t := range g.trees {
		out += g.Cfg.LearnRate * t.Predict(x)
	}
	return out
}

// PredictBatch implements BatchRegressor; predictions are bit-identical
// to per-row Predict. See Forest.PredictBatch.
func (g *GBDT) PredictBatch(X [][]float64, out []float64) {
	if g.ens == nil {
		for i, x := range X {
			out[i] = g.Predict(x)
		}
		return
	}
	for i := range out {
		out[i] = g.base
	}
	g.ens.addBatch(X, g.Cfg.LearnRate, out)
	for i, x := range X {
		if rowHasNaN(x) {
			out[i] = g.Predict(x)
		}
	}
}

// ClassifyProb adapts a regressor trained on 0/1 labels to a probability by
// clamping its output to [0, 1] — used for tree-based classifier ablations.
func ClassifyProb(r Regressor, x []float64) float64 {
	return math.Min(1, math.Max(0, r.Predict(x)))
}
