package trace

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleJob(id int) Job {
	return Job{
		ID: id, User: 3, Partition: "shared", State: StateCompleted,
		Submit: 100, Eligible: 120, Start: 300, End: 4000,
		ReqCPUs: 16, ReqMemGB: 32, ReqNodes: 1, ReqGPUs: 0,
		TimeLimit: 7200, Priority: 5000, QOS: 1,
	}
}

func randomTrace(rng *rand.Rand, n int) *Trace {
	t := &Trace{}
	var clock int64 = 1_600_000_000
	for i := 0; i < n; i++ {
		clock += rng.Int63n(120)
		j := Job{
			ID: i, User: rng.Intn(50), Partition: []string{"shared", "wholenode", "gpu"}[rng.Intn(3)],
			State:  StateCompleted,
			Submit: clock, Eligible: clock + rng.Int63n(60),
			ReqCPUs: 1 + rng.Intn(128), ReqMemGB: 1 + rng.Float64()*256,
			ReqNodes: 1 + rng.Intn(4), ReqGPUs: rng.Intn(2),
			TimeLimit: 600 + rng.Int63n(86400), Priority: rng.Int63n(100000), QOS: rng.Intn(3),
		}
		j.Start = j.Eligible + rng.Int63n(3600)
		j.End = j.Start + rng.Int63n(j.TimeLimit)
		t.Jobs = append(t.Jobs, j)
	}
	return t
}

func TestDerivedQuantities(t *testing.T) {
	j := sampleJob(1)
	if j.QueueSeconds() != 180 {
		t.Fatalf("QueueSeconds = %d", j.QueueSeconds())
	}
	if j.QueueMinutes() != 3 {
		t.Fatalf("QueueMinutes = %v", j.QueueMinutes())
	}
	if j.RuntimeSeconds() != 3700 {
		t.Fatalf("RuntimeSeconds = %d", j.RuntimeSeconds())
	}
	if j.WastedSeconds() != 3500 {
		t.Fatalf("WastedSeconds = %d", j.WastedSeconds())
	}
}

func TestWastedNeverNegative(t *testing.T) {
	j := sampleJob(1)
	j.End = j.Start + j.TimeLimit + 999 // ran past the limit (grace)
	if j.WastedSeconds() != 0 {
		t.Fatalf("WastedSeconds = %d, want 0", j.WastedSeconds())
	}
}

func TestValidate(t *testing.T) {
	good := sampleJob(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	cases := []func(*Job){
		func(j *Job) { j.Eligible = j.Submit - 1 },
		func(j *Job) { j.Start = j.Eligible - 1 },
		func(j *Job) { j.End = j.Start - 1 },
		func(j *Job) { j.ReqCPUs = 0 },
		func(j *Job) { j.ReqNodes = 0 },
		func(j *Job) { j.ReqMemGB = 0 },
		func(j *Job) { j.TimeLimit = 0 },
		func(j *Job) { j.Partition = "" },
	}
	for i, mutate := range cases {
		j := sampleJob(i)
		mutate(&j)
		if err := j.Validate(); err == nil {
			t.Errorf("case %d: invalid job accepted", i)
		}
	}
}

func TestSortByEligible(t *testing.T) {
	tr := &Trace{Jobs: []Job{
		{ID: 2, Eligible: 50}, {ID: 1, Eligible: 10}, {ID: 0, Eligible: 50},
	}}
	tr.SortByEligible()
	ids := []int{tr.Jobs[0].ID, tr.Jobs[1].ID, tr.Jobs[2].ID}
	if !reflect.DeepEqual(ids, []int{1, 0, 2}) {
		t.Fatalf("sorted ids = %v", ids)
	}
}

func TestByPartitionAndShortFraction(t *testing.T) {
	tr := &Trace{Jobs: []Job{
		{Partition: "shared", Eligible: 0, Start: 10},
		{Partition: "shared", Eligible: 0, Start: 10000},
		{Partition: "gpu", Eligible: 0, Start: 0},
	}}
	bp := tr.ByPartition()
	if bp["shared"] != 2 || bp["gpu"] != 1 {
		t.Fatalf("ByPartition = %v", bp)
	}
	if got := tr.ShortQueueFraction(600); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("ShortQueueFraction = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Max != 4 || s.Mean != 2.5 || s.Median != 2.5 || s.Count != 4 {
		t.Fatalf("Summarize = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("StdDev = %v", s.StdDev)
	}
	odd := Summarize([]float64{5, 1, 9})
	if odd.Median != 5 {
		t.Fatalf("odd median = %v", odd.Median)
	}
	if z := Summarize(nil); z.Count != 0 {
		t.Fatalf("empty summarize = %+v", z)
	}
}

func TestTableOne(t *testing.T) {
	tr := &Trace{Jobs: []Job{
		{User: 1, TimeLimit: 7200, Start: 0, End: 3600, ReqCPUs: 1, ReqNodes: 1, ReqMemGB: 1, Partition: "p"},
		{User: 1, TimeLimit: 3600, Start: 0, End: 1800, ReqCPUs: 1, ReqNodes: 1, ReqMemGB: 1, Partition: "p"},
		{User: 2, TimeLimit: 3600, Start: 0, End: 3600, ReqCPUs: 1, ReqNodes: 1, ReqMemGB: 1, Partition: "p"},
	}}
	one := tr.TableOne()
	if one.RequestedHours.Max != 2 || one.RequestedHours.Count != 3 {
		t.Fatalf("RequestedHours = %+v", one.RequestedHours)
	}
	if one.RuntimeHours.Mean != (1+0.5+1)/3 {
		t.Fatalf("RuntimeHours mean = %v", one.RuntimeHours.Mean)
	}
	if one.JobsPerUser.Count != 2 || one.JobsPerUser.Max != 2 {
		t.Fatalf("JobsPerUser = %+v", one.JobsPerUser)
	}
}

func TestMeanWalltimeUsage(t *testing.T) {
	tr := &Trace{Jobs: []Job{
		{TimeLimit: 100, Start: 0, End: 10},
		{TimeLimit: 100, Start: 0, End: 30},
	}}
	if got := tr.MeanWalltimeUsage(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("MeanWalltimeUsage = %v", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := randomTrace(rng, 50)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Jobs, got.Jobs) {
		t.Fatal("CSV round trip mismatch")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := randomTrace(rng, 50)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Jobs, got.Jobs) {
		t.Fatal("JSONL round trip mismatch")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("bad,header\n")); err == nil {
		t.Fatal("expected header error")
	}
	good := strings.Join(csvHeader, ",") + "\n"
	if _, err := ReadCSV(strings.NewReader(good + "x,y\n")); err == nil {
		t.Fatal("expected field-count error")
	}
	bad := good + "notanint,3,shared,COMPLETED,1,2,3,4,5,6,7,8,9,10,11,false\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestReadJSONLError(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("expected JSONL error")
	}
}

func TestTraceValidate(t *testing.T) {
	tr := &Trace{Jobs: []Job{sampleJob(1), sampleJob(2)}}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tr.Jobs[1].ReqCPUs = 0
	if err := tr.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

// Property: Summarize mean is within [min, max] and stddev >= 0.
func TestSummarizeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, math.Mod(x, 1e9))
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		if s.StdDev < 0 || s.Count != len(clean) {
			return false
		}
		return s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
