package controlplane

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// manifestName is the registry's single manifest file.
const manifestName = "manifest.json"

// Registry is a versioned, content-addressed model store on disk:
//
//	<dir>/manifest.json      — the ManifestSet (atomic write-then-rename)
//	<dir>/<sha256-hex>.gob   — bundle blobs, named by content
//
// Publishes are crash-safe in two layers: the blob is written to a temp
// file, fsynced, and renamed into its content address before the manifest
// ever mentions it; the manifest itself is rewritten through the same
// temp+fsync+rename dance. A crash between the two leaves the previous
// manifest intact and at worst an orphan blob, which Open garbage-collects.
// All methods are safe for concurrent use.
type Registry struct {
	dir    string
	retain int

	mu  sync.Mutex
	set ManifestSet
}

// OpenRegistry opens (or initializes) a registry rooted at dir. retain is
// how many non-active blobs to keep before pruning oldest-first; 0 means
// 5, negative keeps everything. Leftover temp files from a crashed
// publish are removed, and blobs no manifest entry references are
// garbage-collected.
func OpenRegistry(dir string, retain int) (*Registry, error) {
	if dir == "" {
		return nil, fmt.Errorf("controlplane: registry needs a directory")
	}
	if retain == 0 {
		retain = 5
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("controlplane: registry: %w", err)
	}
	r := &Registry{dir: dir, retain: retain}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case err == nil:
		set, derr := DecodeManifest(data)
		if derr != nil {
			return nil, derr
		}
		r.set = *set
	case os.IsNotExist(err):
		// Fresh registry.
	default:
		return nil, fmt.Errorf("controlplane: registry: %w", err)
	}
	r.sweep()
	return r, nil
}

// Dir returns the registry root.
func (r *Registry) Dir() string { return r.dir }

// sweep removes crash leftovers: temp files from interrupted writes and
// blob files the manifest does not reference (a publish that died between
// blob rename and manifest rename).
func (r *Registry) sweep() {
	referenced := map[string]bool{}
	for i := range r.set.Versions {
		referenced[r.set.Versions[i].ID] = true
	}
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			_ = os.Remove(filepath.Join(r.dir, name))
		case strings.HasSuffix(name, ".gob"):
			if id := strings.TrimSuffix(name, ".gob"); isHex(id, 64) && !referenced[id] {
				_ = os.Remove(filepath.Join(r.dir, name))
			}
		}
	}
}

// blobPath is the content address of a bundle on disk.
func (r *Registry) blobPath(id string) string {
	return filepath.Join(r.dir, id+".gob")
}

// writeFileAtomic writes data through a temp file, fsyncs, and renames it
// into place — the old file (if any) survives any crash before the rename.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// saveLocked rewrites the manifest atomically. Callers hold r.mu.
func (r *Registry) saveLocked() error {
	data, err := EncodeManifest(&r.set)
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(r.dir, manifestName), data)
}

// Publish stores blob under its SHA-256 and appends a manifest entry with
// the next version number. The caller fills Parent/Watermark/Samples/
// Hyperparams/Eval/Status; Version, ID, and (if zero) CreatedUnix are
// assigned here. Returns the completed manifest entry.
func (r *Registry) Publish(blob []byte, m Manifest) (Manifest, error) {
	if len(blob) == 0 {
		return Manifest{}, fmt.Errorf("controlplane: publish: empty bundle blob")
	}
	sum := sha256.Sum256(blob)
	m.ID = hex.EncodeToString(sum[:])
	if m.Status == "" {
		m.Status = StatusShadow
	}
	if m.CreatedUnix == 0 {
		m.CreatedUnix = time.Now().Unix()
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	m.Version = 1
	if n := len(r.set.Versions); n > 0 {
		m.Version = r.set.Versions[n-1].Version + 1
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, err
	}
	// Blob first: the manifest must never reference bytes that are not
	// durably on disk. Content addressing makes re-publishing the same
	// bytes idempotent at the blob layer.
	if _, err := os.Stat(r.blobPath(m.ID)); err != nil {
		if err := writeFileAtomic(r.blobPath(m.ID), blob); err != nil {
			return Manifest{}, fmt.Errorf("controlplane: publish blob: %w", err)
		}
	}
	r.set.Versions = append(r.set.Versions, m)
	if err := r.saveLocked(); err != nil {
		r.set.Versions = r.set.Versions[:len(r.set.Versions)-1]
		return Manifest{}, fmt.Errorf("controlplane: publish manifest: %w", err)
	}
	r.pruneLocked()
	return m, nil
}

// pruneLocked enforces blob retention: beyond the newest retain non-active
// versions, blobs are deleted (manifest entries stay, status→pruned, for
// lineage). The active version's blob is always kept — it is the rollback
// target. Callers hold r.mu; manifest save errors here are ignored (a
// failed prune re-runs on the next publish).
func (r *Registry) pruneLocked() {
	if r.retain < 0 {
		return
	}
	kept := 0
	changed := false
	for i := len(r.set.Versions) - 1; i >= 0; i-- {
		m := &r.set.Versions[i]
		if m.Status == StatusPruned || m.Version == r.set.Active {
			continue
		}
		kept++
		if kept <= r.retain {
			continue
		}
		// Another entry may share the blob (idempotent re-publish);
		// only delete bytes no unpruned entry still references.
		shared := false
		for j := range r.set.Versions {
			if r.set.Versions[j].ID == m.ID && r.set.Versions[j].Version != m.Version &&
				r.set.Versions[j].Status != StatusPruned {
				shared = true
				break
			}
		}
		if !shared {
			_ = os.Remove(r.blobPath(m.ID))
		}
		m.Status = StatusPruned
		changed = true
	}
	if changed {
		_ = r.saveLocked()
	}
}

// List returns a copy of every manifest entry, oldest first.
func (r *Registry) List() []Manifest {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Manifest(nil), r.set.Versions...)
}

// ActiveVersion returns the active version number (0 = boot bundle).
func (r *Registry) ActiveVersion() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.set.Active
}

// Manifest returns one version's entry.
func (r *Registry) Manifest(version int) (Manifest, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.findLocked(version); m != nil {
		return *m, true
	}
	return Manifest{}, false
}

func (r *Registry) findLocked(version int) *Manifest {
	for i := range r.set.Versions {
		if r.set.Versions[i].Version == version {
			return &r.set.Versions[i]
		}
	}
	return nil
}

// Bundle reads a version's blob and verifies it against its content
// address, so silent disk corruption surfaces here rather than as NaNs at
// predict time.
func (r *Registry) Bundle(version int) (Manifest, []byte, error) {
	r.mu.Lock()
	m := r.findLocked(version)
	if m == nil {
		r.mu.Unlock()
		return Manifest{}, nil, fmt.Errorf("controlplane: no version %d in registry", version)
	}
	entry := *m
	r.mu.Unlock()
	if entry.Status == StatusPruned {
		return Manifest{}, nil, fmt.Errorf("controlplane: version %d blob was pruned", version)
	}
	blob, err := os.ReadFile(r.blobPath(entry.ID))
	if err != nil {
		return Manifest{}, nil, fmt.Errorf("controlplane: read version %d: %w", version, err)
	}
	sum := sha256.Sum256(blob)
	if got := hex.EncodeToString(sum[:]); got != entry.ID {
		return Manifest{}, nil, fmt.Errorf("controlplane: version %d blob corrupt: sha %s != manifest %s", version, got, entry.ID)
	}
	return entry, blob, nil
}

// SetStatus updates one version's lifecycle status (and note, when
// non-empty), persisting the manifest atomically.
func (r *Registry) SetStatus(version int, status, note string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.findLocked(version)
	if m == nil {
		return fmt.Errorf("controlplane: no version %d in registry", version)
	}
	old, oldNote := m.Status, m.Note
	m.Status = status
	if note != "" {
		m.Note = note
	}
	if err := r.saveLocked(); err != nil {
		m.Status, m.Note = old, oldNote
		return err
	}
	return nil
}

// SetActive marks version as the serving model (demoting the previous
// active entry to retired) and persists atomically. Version 0 clears the
// active mark — the rollback-to-boot-bundle case.
func (r *Registry) SetActive(version int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var target *Manifest
	if version != 0 {
		if target = r.findLocked(version); target == nil {
			return fmt.Errorf("controlplane: no version %d in registry", version)
		}
		if target.Status == StatusPruned {
			return fmt.Errorf("controlplane: version %d blob was pruned; cannot activate", version)
		}
	}
	prevActive, prevStatus := r.set.Active, ""
	var prevM *Manifest
	if prevActive != 0 && prevActive != version {
		if prevM = r.findLocked(prevActive); prevM != nil {
			prevStatus = prevM.Status
			prevM.Status = StatusRetired
		}
	}
	var targetOld string
	if target != nil {
		targetOld = target.Status
		target.Status = StatusActive
	}
	r.set.Active = version
	if err := r.saveLocked(); err != nil {
		r.set.Active = prevActive
		if prevM != nil {
			prevM.Status = prevStatus
		}
		if target != nil {
			target.Status = targetOld
		}
		return err
	}
	return nil
}
