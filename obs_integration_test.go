// Integration tests for the observability subsystem: Prometheus
// exposition lint, trace-ID propagation through the request pipeline, the
// online accuracy loop (predict → start event → updated gauges), and
// training telemetry surfacing on /metrics.
package trout_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	trout "repro"
	"repro/internal/nn"
	"repro/internal/obs"
)

// ---------------------------------------------------------------------------
// Exposition lint

var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

type expoSample struct {
	name   string // full sample name (may carry _bucket/_sum/_count)
	labels string // raw label block, "" when bare
	le     string // value of the le label, histogram buckets only
	value  float64
}

type expoFamily struct {
	name    string
	typ     string
	help    bool
	samples []expoSample
}

// parseExposition lints a text-format 0.0.4 body line by line and returns
// the families in document order. Any format violation fails the test.
func parseExposition(t *testing.T, body string) []expoFamily {
	t.Helper()
	var fams []expoFamily
	byName := map[string]*expoFamily{}
	cur := "" // family the parser is inside, for ordering checks
	family := func(name string) *expoFamily {
		f, ok := byName[name]
		if !ok {
			fams = append(fams, expoFamily{name: name})
			f = &fams[len(fams)-1]
			byName[name] = f
		}
		return f
	}
	// sampleFamily maps a sample name back to its family: exact match, or
	// histogram series suffixes on an already-declared histogram family.
	sampleFamily := func(name string) *expoFamily {
		if f, ok := byName[name]; ok && f.typ != "" {
			return f
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base == name {
				continue
			}
			if f, ok := byName[base]; ok && f.typ == "histogram" {
				return f
			}
		}
		return nil
	}

	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		lineNo := ln + 1
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRe.MatchString(name) {
				t.Fatalf("line %d: malformed HELP: %q", lineNo, line)
			}
			f := family(name)
			if f.help {
				t.Fatalf("line %d: duplicate HELP for %s", lineNo, name)
			}
			if len(f.samples) > 0 {
				t.Fatalf("line %d: HELP for %s after its samples", lineNo, name)
			}
			f.help = true
			cur = name
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRe.MatchString(name) {
				t.Fatalf("line %d: malformed TYPE: %q", lineNo, line)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q for %s", lineNo, typ, name)
			}
			f := family(name)
			if !f.help {
				t.Fatalf("line %d: TYPE for %s precedes its HELP", lineNo, name)
			}
			if f.typ != "" {
				t.Fatalf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			if len(f.samples) > 0 {
				t.Fatalf("line %d: TYPE for %s after its samples", lineNo, name)
			}
			f.typ = typ
			cur = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", lineNo, line)
		}

		// Sample line: name[{labels}] value
		s := parseSampleLine(t, lineNo, line)
		f := sampleFamily(s.name)
		if f == nil {
			t.Fatalf("line %d: sample %s has no preceding HELP/TYPE family", lineNo, s.name)
		}
		if f.name != cur {
			t.Fatalf("line %d: sample %s interleaved into family %s", lineNo, s.name, cur)
		}
		f.samples = append(f.samples, s)
	}

	for i := range fams {
		f := &fams[i]
		if !f.help || f.typ == "" {
			t.Fatalf("family %s missing HELP or TYPE", f.name)
		}
		// A family with zero samples is legal: vec families advertise
		// HELP/TYPE before their first child exists.
		if f.typ == "histogram" {
			lintHistogram(t, f)
		}
	}
	return fams
}

func parseSampleLine(t *testing.T, lineNo int, line string) expoSample {
	t.Helper()
	var s expoSample
	rest := line
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexByte(rest, ' ')
	if brace >= 0 && brace < sp {
		s.name = rest[:brace]
		end, le := lintLabels(t, lineNo, rest[brace:])
		s.labels = rest[brace : brace+end]
		s.le = le
		rest = rest[brace+end:]
		if len(rest) == 0 || rest[0] != ' ' {
			t.Fatalf("line %d: no space after label block: %q", lineNo, line)
		}
		rest = rest[1:]
	} else {
		if sp < 0 {
			t.Fatalf("line %d: no value: %q", lineNo, line)
		}
		s.name = rest[:sp]
		rest = rest[sp+1:]
	}
	if !metricNameRe.MatchString(s.name) {
		t.Fatalf("line %d: bad metric name %q", lineNo, s.name)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		if rest != "+Inf" && rest != "-Inf" && rest != "NaN" {
			t.Fatalf("line %d: bad value %q: %v", lineNo, rest, err)
		}
	}
	s.value = v
	return s
}

// lintLabels validates a `{name="value",...}` block starting at b[0]=='{'
// and returns its length plus the value of any `le` label. Escapes inside
// values must be limited to \\ , \" and \n.
func lintLabels(t *testing.T, lineNo int, b string) (int, string) {
	t.Helper()
	i := 1 // past '{'
	le := ""
	for {
		j := i
		for j < len(b) && b[j] != '=' {
			j++
		}
		if j >= len(b) {
			t.Fatalf("line %d: unterminated label block", lineNo)
		}
		lname := b[i:j]
		if !metricNameRe.MatchString(lname) {
			t.Fatalf("line %d: bad label name %q", lineNo, lname)
		}
		if j+1 >= len(b) || b[j+1] != '"' {
			t.Fatalf("line %d: label %s value not quoted", lineNo, lname)
		}
		k := j + 2
		var val strings.Builder
		for k < len(b) && b[k] != '"' {
			if b[k] == '\\' {
				if k+1 >= len(b) {
					t.Fatalf("line %d: dangling escape", lineNo)
				}
				switch b[k+1] {
				case '\\', '"', 'n':
				default:
					t.Fatalf("line %d: invalid escape \\%c in label %s", lineNo, b[k+1], lname)
				}
				k += 2
				val.WriteByte('?')
				continue
			}
			if b[k] == '\n' {
				t.Fatalf("line %d: raw newline in label value", lineNo)
			}
			val.WriteByte(b[k])
			k++
		}
		if k >= len(b) {
			t.Fatalf("line %d: unterminated label value", lineNo)
		}
		if lname == "le" {
			le = val.String()
		}
		k++ // past closing quote
		if k < len(b) && b[k] == ',' {
			i = k + 1
			continue
		}
		if k < len(b) && b[k] == '}' {
			return k + 1, le
		}
		t.Fatalf("line %d: expected ',' or '}' after label %s", lineNo, lname)
	}
}

// lintHistogram checks each (label-partition of a) histogram family for
// monotone cumulative buckets, a +Inf bucket, and bucket/count agreement.
func lintHistogram(t *testing.T, f *expoFamily) {
	t.Helper()
	// Partition buckets by their non-le labels so HistogramVec children
	// lint independently.
	stripLE := func(labels string) string {
		inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
		var keep []string
		for _, part := range splitLabels(inner) {
			if !strings.HasPrefix(part, "le=") {
				keep = append(keep, part)
			}
		}
		return strings.Join(keep, ",")
	}
	type hist struct {
		les     []float64
		counts  []float64
		infSeen bool
		inf     float64
		count   float64
		hasCnt  bool
	}
	parts := map[string]*hist{}
	get := func(key string) *hist {
		h, ok := parts[key]
		if !ok {
			h = &hist{}
			parts[key] = h
		}
		return h
	}
	for _, s := range f.samples {
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			h := get(stripLE(s.labels))
			if s.le == "+Inf" {
				h.infSeen = true
				h.inf = s.value
				continue
			}
			lv, err := strconv.ParseFloat(s.le, 64)
			if err != nil {
				t.Fatalf("%s: bad le %q", f.name, s.le)
			}
			h.les = append(h.les, lv)
			h.counts = append(h.counts, s.value)
		case strings.HasSuffix(s.name, "_count"):
			h := get(strings.Trim(s.labels, "{}"))
			h.count = s.value
			h.hasCnt = true
		}
	}
	for key, h := range parts {
		if !h.infSeen {
			t.Fatalf("%s{%s}: missing +Inf bucket", f.name, key)
		}
		for i := 1; i < len(h.les); i++ {
			if h.les[i] <= h.les[i-1] {
				t.Fatalf("%s{%s}: le bounds not increasing: %v", f.name, key, h.les)
			}
			if h.counts[i] < h.counts[i-1] {
				t.Fatalf("%s{%s}: buckets not cumulative: %v", f.name, key, h.counts)
			}
		}
		if len(h.counts) > 0 && h.inf < h.counts[len(h.counts)-1] {
			t.Fatalf("%s{%s}: +Inf bucket %v below last bucket %v",
				f.name, key, h.inf, h.counts[len(h.counts)-1])
		}
		if h.hasCnt && h.inf != h.count {
			t.Fatalf("%s{%s}: +Inf bucket %v != _count %v", f.name, key, h.inf, h.count)
		}
	}
}

// splitLabels splits `a="x",b="y"` on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func scrape(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// metricValue extracts a sample value by exact series key (name plus
// optional label block).
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in exposition:\n%s", series, body)
	return 0
}

// TestMetricsExposition drives traffic through every handler family and
// then lints the full /metrics output line by line: paired HELP/TYPE
// before samples, legal names and label escaping, monotone cumulative
// histogram buckets with +Inf, and identical family/series ordering
// across two scrapes.
func TestMetricsExposition(t *testing.T) {
	srv, e := testService(t)
	// Exercise: health, a by-ID predict (stage spans), a batch predict
	// (batch-size histogram), and a 404 (error-path counter).
	if code := getJSON(t, srv.URL+"/health", &struct{}{}); code != 200 {
		t.Fatalf("health %d", code)
	}
	jobID := e.Trace.Jobs[len(e.Trace.Jobs)/2].ID
	var pr struct {
		Long bool `json:"long"`
	}
	if code := getJSON(t, fmt.Sprintf("%s/predict?job=%d", srv.URL, jobID), &pr); code != 200 {
		t.Fatalf("predict %d", code)
	}
	at := e.Trace.Jobs[len(e.Trace.Jobs)/2].Eligible
	body := fmt.Sprintf(`{"at":%d,"jobs":[{"user":3,"partition":"shared","req_cpus":8},{"user":4,"partition":"shared","req_cpus":4}]}`, at)
	resp, err := http.Post(srv.URL+"/predict/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("batch %d", resp.StatusCode)
	}
	getJSON(t, srv.URL+"/predict?job=99999999", &struct{}{}) // 404 path

	text, ct := scrape(t, srv.URL)
	if ct != obs.ContentType {
		t.Fatalf("Content-Type %q, want %q", ct, obs.ContentType)
	}
	fams := parseExposition(t, text)

	seen := map[string]string{}
	for _, f := range fams {
		seen[f.name] = f.typ
	}
	for name, typ := range map[string]string{
		"trout_predictions_total":              "counter",
		"trout_snapshot_source_total":          "counter",
		"trout_http_requests_total":            "counter",
		"trout_http_request_duration_seconds":  "histogram",
		"trout_predict_stage_duration_seconds": "histogram",
		"trout_predict_batch_size":             "histogram",
		"trout_livestate_events_total":         "counter",
		"trout_queue_pending":                  "gauge",
		"trout_wal_lag_records":                "gauge",
		"trout_online_joined_total":            "counter",
		"trout_online_pending_predictions":     "gauge",
		"trout_online_hit_rate":                "gauge",
		"trout_online_mae_minutes":             "gauge",
		"trout_online_mape":                    "gauge",
		"trout_online_calibration_drift":       "gauge",
		"trout_train_loss":                     "gauge",
		"trout_train_epochs_total":             "counter",
		"trout_trace_started_total":            "counter",
		"trout_trace_kept_total":               "counter",
		"trout_slo_availability_burn_rate":     "gauge",
		"trout_slo_latency_burn_rate":          "gauge",
		"trout_slo_alert_state":                "gauge",
		"trout_runtime_goroutines":             "gauge",
		"trout_runtime_heap_bytes":             "gauge",
	} {
		if got := seen[name]; got != typ {
			t.Fatalf("family %s: type %q, want %q", name, got, typ)
		}
	}
	// The per-stage histogram must carry the predict pipeline stages.
	// (regress runs only for long-classified jobs — the hierarchical
	// contract — so require it only when this prediction was long.)
	stages := []string{"snapshot", "featurize", "scale", "classify"}
	if pr.Long {
		stages = append(stages, "regress")
	}
	for _, stage := range stages {
		want := fmt.Sprintf(`trout_predict_stage_duration_seconds_count{stage=%q}`, stage)
		if !strings.Contains(text, want) {
			t.Fatalf("missing stage series %s", want)
		}
	}
	if metricValue(t, text, `trout_http_requests_total{path="/predict",code="404"}`) < 1 {
		t.Fatal("404 not counted")
	}

	// Determinism: the sequence of series keys must be identical between
	// two scrapes (values may move — the scrape itself is counted). The
	// first scrape above already minted the path="/metrics" counter child,
	// so the series set is stable from here on.
	keys := func(body string) []string {
		var out []string
		for _, line := range strings.Split(body, "\n") {
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "#") {
				out = append(out, line)
				continue
			}
			sp := strings.LastIndexByte(line, ' ')
			out = append(out, line[:sp])
		}
		return out
	}
	text1, _ := scrape(t, srv.URL)
	text2, _ := scrape(t, srv.URL)
	k1, k2 := keys(text1), keys(text2)
	if len(k1) != len(k2) {
		t.Fatalf("scrape series count changed: %d vs %d", len(k1), len(k2))
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("scrape ordering not deterministic at %d: %q vs %q", i, k1[i], k2[i])
		}
	}
}

// ---------------------------------------------------------------------------
// Trace-ID propagation

// syncBuf is a goroutine-safe log sink: the access log is written after
// the response reaches the client, so tests poll it.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// accessLogs polls the sink until n "request" entries arrive, then
// returns them decoded.
func accessLogs(t *testing.T, sb *syncBuf, n int) []map[string]any {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var out []map[string]any
		for _, line := range strings.Split(sb.String(), "\n") {
			if line == "" {
				continue
			}
			var m map[string]any
			if err := json.Unmarshal([]byte(line), &m); err != nil {
				t.Fatalf("non-JSON log line %q: %v", line, err)
			}
			if m["msg"] == "request" {
				out = append(out, m)
			}
		}
		if len(out) >= n {
			return out
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d access-log entries after timeout:\n%s", len(out), sb.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTraceIDPropagation checks the request-ID contract: a caller-supplied
// X-Request-ID is echoed on the response and stamped on the JSON access
// log with per-stage spans; a missing or malformed one is replaced by a
// generated ID.
func TestTraceIDPropagation(t *testing.T) {
	e := sharedExperiment(t)
	var sb syncBuf
	logger, err := obs.NewLogger(&sb, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := trout.NewServiceWith(resilientBundle(t), e.Trace, trout.ServiceConfig{Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)

	jobID := e.Trace.Jobs[len(e.Trace.Jobs)/2].ID
	get := func(traceID string) *http.Response {
		req, err := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/predict?job=%d", srv.URL, jobID), nil)
		if err != nil {
			t.Fatal(err)
		}
		if traceID != "" {
			req.Header.Set(obs.TraceIDHeader, traceID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("predict status %d", resp.StatusCode)
		}
		return resp
	}

	// 1: caller-supplied ID round-trips.
	resp := get("it-is-a-test-id-42")
	if got := resp.Header.Get(obs.TraceIDHeader); got != "it-is-a-test-id-42" {
		t.Fatalf("echoed trace ID %q", got)
	}
	// 2: absent ID → generated 16-hex.
	resp = get("")
	gen := resp.Header.Get(obs.TraceIDHeader)
	if len(gen) != 16 {
		t.Fatalf("generated trace ID %q", gen)
	}
	// 3: malformed ID (embedded quote) → replaced, not echoed.
	resp = get(`bad"id`)
	repl := resp.Header.Get(obs.TraceIDHeader)
	if repl == `bad"id` || len(repl) != 16 {
		t.Fatalf("malformed trace ID echoed as %q", repl)
	}

	logs := accessLogs(t, &sb, 3)
	byID := map[string]map[string]any{}
	for _, m := range logs {
		id, _ := m["trace_id"].(string)
		byID[id] = m
	}
	for _, id := range []string{"it-is-a-test-id-42", gen, repl} {
		m, ok := byID[id]
		if !ok {
			t.Fatalf("no access-log entry for trace ID %q; got %v", id, logs)
		}
		if m["path"] != "/predict" || m["method"] != "GET" {
			t.Fatalf("access log %v", m)
		}
		if status, _ := m["status"].(float64); status != 200 {
			t.Fatalf("access log status %v", m["status"])
		}
		spans, ok := m["spans"].(map[string]any)
		if !ok || len(spans) == 0 {
			t.Fatalf("access log entry %q has no spans: %v", id, m)
		}
		if _, ok := spans[obs.StageSnapshot]; !ok {
			t.Fatalf("spans missing %q stage: %v", obs.StageSnapshot, spans)
		}
	}
}

// ---------------------------------------------------------------------------
// Online accuracy loop

// TestOnlineAccuracyLoop is the acceptance-criteria round trip: a live
// prediction is remembered as pending, and when the engine later sees the
// job's start event the realized queue time joins against it and the
// rolling accuracy gauges on /metrics move.
func TestOnlineAccuracyLoop(t *testing.T) {
	srv, e := testService(t)
	now := e.Trace.Jobs[len(e.Trace.Jobs)-1].End + 100
	const jobID = 999999 // not in the trace: the engine alone knows it

	post := func(events string) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/events", "application/jsonl", strings.NewReader(events))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("events status %d: %s", resp.StatusCode, body)
		}
	}
	post(fmt.Sprintf(`{"type":"submit","time":%d,"job":{"id":%d,"user":3,"partition":"shared","submit":%d,"req_cpus":8,"req_mem_gb":16,"req_nodes":1,"time_limit":7200,"priority":3000}}`+"\n"+
		`{"type":"eligible","time":%d,"job_id":%d}`+"\n", now, jobID, now, now+5, jobID))

	var p struct {
		Prob   float64 `json:"prob"`
		Long   bool    `json:"long"`
		Source string  `json:"snapshot_source"`
	}
	if code := getJSON(t, fmt.Sprintf("%s/predict?job=%d", srv.URL, jobID), &p); code != 200 {
		t.Fatalf("predict status %d", code)
	}
	if p.Source != "live" {
		t.Fatalf("snapshot source %q", p.Source)
	}

	text, _ := scrape(t, srv.URL)
	if v := metricValue(t, text, "trout_online_pending_predictions"); v != 1 {
		t.Fatalf("pending predictions %v before start event", v)
	}
	if v := metricValue(t, text, "trout_online_joined_total"); v != 0 {
		t.Fatalf("joined %v before start event", v)
	}

	// The job starts 65s after eligibility: a realized wait of 1 minute.
	post(fmt.Sprintf(`{"type":"start","time":%d,"job_id":%d}`+"\n", now+70, jobID))

	text, _ = scrape(t, srv.URL)
	if v := metricValue(t, text, "trout_online_joined_total"); v != 1 {
		t.Fatalf("joined %v after start event", v)
	}
	if v := metricValue(t, text, "trout_online_pending_predictions"); v != 0 {
		t.Fatalf("pending predictions %v after start event", v)
	}
	// Realized wait ≈ 1.08 min, well under the 10-minute cutoff: the hit
	// rate is 1 exactly when the classifier predicted "short".
	hit := metricValue(t, text, "trout_online_hit_rate")
	wantHit := 0.0
	if !p.Long {
		wantHit = 1.0
	}
	if hit != wantHit {
		t.Fatalf("hit rate %v (predicted long=%v)", hit, p.Long)
	}
	if v := metricValue(t, text, "trout_online_mae_minutes"); v < 0 {
		t.Fatalf("MAE %v", v)
	}
	// An unmatched start (never predicted) increments the unmatched
	// counter, not the join.
	post(fmt.Sprintf(`{"type":"submit","time":%d,"job":{"id":%d,"user":4,"partition":"shared","submit":%d,"req_cpus":4,"req_mem_gb":8,"req_nodes":1,"time_limit":3600,"priority":1000}}`+"\n"+
		`{"type":"eligible","time":%d,"job_id":%d}`+"\n"+
		`{"type":"start","time":%d,"job_id":%d}`+"\n",
		now+80, 999998, now+80, now+81, 999998, now+90, 999998))
	text, _ = scrape(t, srv.URL)
	if v := metricValue(t, text, "trout_online_unmatched_starts_total"); v != 1 {
		t.Fatalf("unmatched starts %v", v)
	}
	if v := metricValue(t, text, "trout_online_joined_total"); v != 1 {
		t.Fatalf("joined moved on unmatched start: %v", v)
	}
}

// ---------------------------------------------------------------------------
// Training telemetry

// TestServiceTrainTelemetry drives the service's TrainHooks as a refit
// would and checks the per-head training families surface on /metrics.
func TestServiceTrainTelemetry(t *testing.T) {
	e := sharedExperiment(t)
	svc, err := trout.NewServiceWith(resilientBundle(t), e.Trace, trout.ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)

	hooks := svc.TrainHooks()
	hooks.OnEpoch("classifier", nn.EpochStats{Epoch: 0, TrainLoss: 0.7, ValLoss: 0.8, GradNorm: 1.5, LR: 0.01})
	hooks.OnEpoch("classifier", nn.EpochStats{Epoch: 1, TrainLoss: 0.5, ValLoss: 0.6, GradNorm: 1.2, LR: 0.01})
	hooks.OnRollback("regressor", 3, 1, 0.05)

	text, _ := scrape(t, srv.URL)
	if v := metricValue(t, text, `trout_train_loss{head="classifier"}`); v != 0.5 {
		t.Fatalf("train loss %v", v)
	}
	if v := metricValue(t, text, `trout_train_val_loss{head="classifier"}`); v != 0.6 {
		t.Fatalf("val loss %v", v)
	}
	if v := metricValue(t, text, `trout_train_grad_norm{head="classifier"}`); v != 1.2 {
		t.Fatalf("grad norm %v", v)
	}
	if v := metricValue(t, text, `trout_train_epochs_total{head="classifier"}`); v != 2 {
		t.Fatalf("epochs %v", v)
	}
	if v := metricValue(t, text, `trout_train_rollbacks_total{head="regressor"}`); v != 1 {
		t.Fatalf("rollbacks %v", v)
	}
	if v := metricValue(t, text, `trout_train_learning_rate{head="regressor"}`); v != 0.05 {
		t.Fatalf("rollback LR %v", v)
	}
}
