// Service-level replication tests: a leader and a follower dashboard
// wired through /replication/*, the follower readiness contract (503 on
// /ready while behind, /predict still answering), leader/follower answer
// equivalence down to the 33-feature vector, ingest admission control,
// and the fault-window response-validity contract under load.
package trout_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	trout "repro"
	"repro/internal/livestate"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/replication"
	"repro/internal/resilience"
)

var replTestRetry = resilience.Policy{InitialInterval: 5 * time.Millisecond, MaxInterval: 50 * time.Millisecond}

// leaderService builds a WAL-backed dashboard service seeded with the
// shared experiment's trace.
func leaderService(t *testing.T, cfg trout.ServiceConfig) (*httptest.Server, *trout.Service, *trout.Experiment) {
	t.Helper()
	e := sharedExperiment(t)
	if cfg.Live == nil {
		st, err := livestate.OpenStore(livestate.StoreOptions{
			Dir: t.TempDir(), SyncEvery: -1, SegmentBytes: 64 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Live = st
	}
	svc, err := trout.NewServiceWith(resilientBundle(t), e.Trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return srv, svc, e
}

// followerService builds a follower replicating from leaderURL. The pull
// loop is NOT started; call svc.StartReplication when the test wants it.
func followerService(t *testing.T, leaderURL string) (*httptest.Server, *trout.Service) {
	t.Helper()
	e := sharedExperiment(t)
	svc, err := trout.NewServiceWith(resilientBundle(t), e.Trace, trout.ServiceConfig{
		LeaderURL: leaderURL,
		Replication: replication.FollowerConfig{
			Retry: replTestRetry, PollWait: 100 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return srv, svc
}

func waitReplicated(t *testing.T, leader, follower *trout.Service) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		lm, fm := leader.LiveStore().Metrics(), follower.LiveStore().Metrics()
		if fm.LSN == lm.LSN && fm.Gen == lm.Gen && follower.Follower().Stats().CaughtUp {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	lm, fm := leader.LiveStore().Metrics(), follower.LiveStore().Metrics()
	t.Fatalf("follower never caught up: leader lsn=%d gen=%d follower lsn=%d gen=%d",
		lm.LSN, lm.Gen, fm.LSN, fm.Gen)
}

// TestFollowerReadyReflectsReplicationLag pins the satellite-3 regression:
// a follower that has not caught up answers 503 on /ready (load balancers
// must skip it) while /predict still serves — degraded, but available and
// tier-tagged.
func TestFollowerReadyReflectsReplicationLag(t *testing.T) {
	lsrv, lsvc, e := leaderService(t, trout.ServiceConfig{})
	fsrv, fsvc := followerService(t, lsrv.URL)

	// Replication not started: the replica is maximally behind.
	resp, err := http.Get(fsrv.URL + "/ready")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/ready on a behind follower = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "error") {
		t.Fatalf("503 without structured error body: %s", body)
	}

	// /predict still answers, tier-tagged, from the scan fallback.
	at := e.Trace.Jobs[len(e.Trace.Jobs)-1].End + 100
	preq := fmt.Sprintf(`{"at":%d,"job":{"user":3,"partition":"shared","req_cpus":8,"req_mem_gb":16,"req_nodes":1,"time_limit":7200,"priority":3000}}`, at)
	var pr struct {
		Tier   string `json:"tier"`
		Source string `json:"snapshot_source"`
	}
	presp, err := http.Post(fsrv.URL+"/predict", "application/json", strings.NewReader(preq))
	if err != nil {
		t.Fatal(err)
	}
	if presp.StatusCode != http.StatusOK {
		presp.Body.Close()
		t.Fatalf("/predict on a behind follower = %d, want 200", presp.StatusCode)
	}
	if err := jsonDecode(presp.Body, &pr); err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if pr.Tier == "" {
		t.Fatal("degraded prediction lost its tier tag")
	}

	// Catch up; /ready must flip to 200 and /health must not be degraded.
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	fsvc.StartReplication(ctx)
	waitReplicated(t, lsvc, fsvc)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(fsrv.URL + "/ready")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/ready stayed %d after catch-up", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
	var h struct {
		Status      string `json:"status"`
		Replication struct {
			Role     string `json:"role"`
			CaughtUp bool   `json:"caught_up"`
		} `json:"replication"`
	}
	if code := getJSON(t, fsrv.URL+"/health", &h); code != 200 {
		t.Fatalf("health status %d", code)
	}
	if h.Status != "ok" || h.Replication.Role != "follower" || !h.Replication.CaughtUp {
		t.Fatalf("follower health after catch-up: %+v", h)
	}
}

// TestLeaderFollowerIdenticalAnswers is the convergence acceptance at the
// API surface: after events flow leader→follower, both nodes produce the
// same 33-feature vector and the same prediction for a probe job, and the
// follower forwards writes to the leader.
func TestLeaderFollowerIdenticalAnswers(t *testing.T) {
	lsrv, lsvc, e := leaderService(t, trout.ServiceConfig{})
	fsrv, fsvc := followerService(t, lsrv.URL)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	fsvc.StartReplication(ctx)
	waitReplicated(t, lsvc, fsvc)

	// Probe job enters through the LEADER's event stream.
	const probe = 9200001
	now := e.Trace.Jobs[len(e.Trace.Jobs)-1].End + 100
	var buf bytes.Buffer
	fmt.Fprintf(&buf, `{"type":"submit","time":%d,"job":{"id":%d,"user":3,"partition":"shared","submit":%d,"req_cpus":8,"req_mem_gb":16,"req_nodes":1,"time_limit":7200,"priority":3000}}`+"\n", now, probe, now)
	fmt.Fprintf(&buf, `{"type":"eligible","time":%d,"job_id":%d}`+"\n", now+5, probe)
	resp, err := http.Post(lsrv.URL+"/events", "application/jsonl", &buf)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leader events status %d", resp.StatusCode)
	}
	waitReplicated(t, lsvc, fsvc)

	// Identical 33-feature vectors for the probe job on both nodes.
	var lf, ff map[string]float64
	if code := getJSON(t, fmt.Sprintf("%s/features?job=%d", lsrv.URL, probe), &lf); code != 200 {
		t.Fatalf("leader features status %d", code)
	}
	if code := getJSON(t, fmt.Sprintf("%s/features?job=%d", fsrv.URL, probe), &ff); code != 200 {
		t.Fatalf("follower features status %d", code)
	}
	if len(lf) != len(trout.FeatureNames) {
		t.Fatalf("leader served %d features, want %d", len(lf), len(trout.FeatureNames))
	}
	if len(lf) != len(ff) {
		t.Fatalf("feature count mismatch: leader %d follower %d", len(lf), len(ff))
	}
	for name, lv := range lf {
		if fv, ok := ff[name]; !ok || fv != lv {
			t.Fatalf("feature %q diverged: leader %v follower %v (ok=%v)", name, lv, ff[name], ok)
		}
	}

	// Identical predictions, byte for byte.
	preq := fmt.Sprintf(`{"at":%d,"job":{"user":5,"partition":"shared","req_cpus":16,"req_mem_gb":32,"req_nodes":1,"time_limit":14400,"priority":2500}}`, now+10)
	post := func(url string) string {
		resp, err := http.Post(url+"/predict", "application/json", strings.NewReader(preq))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict on %s: %d", url, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if lp, fp := post(lsrv.URL), post(fsrv.URL); lp != fp {
		t.Fatalf("predictions diverged:\nleader:   %s\nfollower: %s", lp, fp)
	}

	// Writes on the follower are not handled locally: 307 to the leader.
	noRedirect := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	wresp, err := noRedirect.Post(fsrv.URL+"/events", "application/jsonl", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, wresp.Body)
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("follower write = %d, want 307", wresp.StatusCode)
	}
	if loc := wresp.Header.Get("Location"); !strings.HasPrefix(loc, lsrv.URL) {
		t.Fatalf("redirect points at %q, not the leader", loc)
	}
}

// TestIngestAdmissionSheds pins the load-shed contract on the leader's
// ingest path: with the single admission slot held by a slow upload, the
// next ingest request sheds immediately with 429 + Retry-After and the
// decision surfaces on /metrics.
func TestIngestAdmissionSheds(t *testing.T) {
	lsrv, _, _ := leaderService(t, trout.ServiceConfig{
		Admission: resilience.AdmissionConfig{MaxInFlight: 1, MaxQueue: -1},
	})

	// Hold the only slot with an /events upload whose body never ends.
	pr, pw := io.Pipe()
	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(lsrv.URL+"/events", "application/jsonl", pr)
		if err != nil {
			firstDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	// Wait until the slot is actually held, then expect an immediate shed.
	deadline := time.Now().Add(5 * time.Second)
	var shed *http.Response
	for {
		resp, err := http.Post(lsrv.URL+"/events", "application/jsonl", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			shed = resp
			break
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("never shed while the slot was held")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if ra := shed.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := jsonDecode(shed.Body, &e); err != nil || e.Error == "" {
		t.Fatalf("429 without structured error body (err=%v)", err)
	}
	shed.Body.Close()

	pw.Close() // release the slot
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("held upload finished with %d", code)
	}

	mresp, err := http.Get(lsrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mb), `trout_admission_total{decision="shed_queue_full"}`) {
		t.Fatal("shed decision missing from /metrics")
	}
	if !strings.Contains(string(mb), `trout_admission_total{decision="accepted"}`) {
		t.Fatal("accepted decision missing from /metrics")
	}
}

// TestFaultWindowResponsesAreValid drives a mixed loadgen workload at a
// leader whose admission gate is deliberately tiny, then applies ISSUE 6's
// acceptance: every response in the window is a valid prediction, a
// structured error, or a 429 with Retry-After — never a hang, an empty
// reply, or an unstructured failure.
func TestFaultWindowResponsesAreValid(t *testing.T) {
	lsrv, _, e := leaderService(t, trout.ServiceConfig{
		Admission: resilience.AdmissionConfig{
			MaxInFlight: 1, MaxQueue: 1, QueueTimeout: 5 * time.Millisecond,
		},
	})
	sc, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:     lsrv.URL,
		Requests:    300,
		Concurrency: 8,
		At:          e.Trace.Jobs[len(e.Trace.Jobs)-1].End + 100,
		JobIDBase:   9_300_000,
		Validate:    loadgen.StrictValidate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Total != 300 {
		t.Fatalf("loadgen issued %d requests, want 300", sc.Total)
	}
	if sc.Invalid != 0 {
		t.Fatalf("%d invalid responses: %v", sc.Invalid, sc.InvalidSamples)
	}
	if sc.NetErrors != 0 {
		t.Fatalf("%d network errors against a live server", sc.NetErrors)
	}
	for code := range sc.Status {
		if code != http.StatusOK && code != http.StatusTooManyRequests {
			t.Fatalf("unexpected status %d in fault window: %v", code, sc.Status)
		}
	}
}

func jsonDecode(r io.Reader, out any) error {
	return json.NewDecoder(r).Decode(out)
}

// TestWriteProxyTraceContinuity pins the cross-node trace contract for
// follower write forwarding: one X-Request-ID must survive both forwarding
// modes — the 307 redirect (the client re-sends the request, headers
// included, to the leader) and the transparent reverse proxy (the follower
// forwards the inbound headers itself) — so the leader's and follower's
// access logs tell one story about one write.
func TestWriteProxyTraceContinuity(t *testing.T) {
	const traceID = "feedfacecafef00d"
	eventsBody := `{"type":"submit","time":3000,"job":{"id":777001,"user":1,"partition":"shared","submit":3000,"req_cpus":1,"time_limit":600}}` + "\n"

	for _, proxy := range []bool{false, true} {
		name := "redirect307"
		if proxy {
			name = "reverseproxy"
		}
		t.Run(name, func(t *testing.T) {
			var lsb, fsb syncBuf
			llog, err := obs.NewLogger(&lsb, "info", "json")
			if err != nil {
				t.Fatal(err)
			}
			lsrv, _, e := leaderService(t, trout.ServiceConfig{Logger: llog})

			flog, err := obs.NewLogger(&fsb, "info", "json")
			if err != nil {
				t.Fatal(err)
			}
			fsvc, err := trout.NewServiceWith(resilientBundle(t), e.Trace, trout.ServiceConfig{
				LeaderURL:   lsrv.URL,
				ProxyWrites: proxy,
				Logger:      flog,
				Replication: replication.FollowerConfig{
					Retry: replTestRetry, PollWait: 100 * time.Millisecond,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			fsrv := httptest.NewServer(fsvc.Handler())
			t.Cleanup(fsrv.Close)

			req, err := http.NewRequest(http.MethodPost, fsrv.URL+"/events", strings.NewReader(eventsBody))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/x-ndjson")
			req.Header.Set(obs.TraceIDHeader, traceID)
			// The default client follows the 307 (re-sending method, body,
			// and headers); on the proxy path there is nothing to follow.
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("forwarded write = %d, want 200", resp.StatusCode)
			}
			if got := resp.Header.Get(obs.TraceIDHeader); got != traceID {
				t.Fatalf("final response echoes trace ID %q, want %q", got, traceID)
			}

			// Both hops logged the write under the SAME trace ID.
			for side, sb := range map[string]*syncBuf{"leader": &lsb, "follower": &fsb} {
				entry := accessLogs(t, sb, 1)[0]
				if entry["trace_id"] != traceID {
					t.Fatalf("%s access log trace_id = %v, want %q", side, entry["trace_id"], traceID)
				}
				if entry["path"] != "/events" || entry["method"] != "POST" {
					t.Fatalf("%s logged %v %v, want POST /events", side, entry["method"], entry["path"])
				}
			}
		})
	}
}
