package livestate

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"
)

// Fingerprint hashes the engine's replicated state deterministically: the
// tracked job records (sorted by ID), their phases, the submission ring in
// order, the event clock, and the apply counters. Two engines with equal
// fingerprints produce identical snapshots — and therefore identical
// 33-feature vectors — for any probe job, which is how the fault-injection
// harness proves a follower converged to the leader bit for bit.
func (e *Engine) Fingerprint() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	h := fnv.New64a()
	var buf [8]byte
	wi := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wf := func(v float64) { wu(math.Float64bits(v)) }
	ws := func(s string) {
		wi(int64(len(s)))
		h.Write([]byte(s))
	}

	wi(e.now)
	wu(e.errs)

	ids := make([]int, 0, len(e.jobs))
	for id := range e.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	wi(int64(len(ids)))
	for _, id := range ids {
		js := e.jobs[id]
		j := &js.job
		wi(int64(j.ID))
		wi(int64(j.User))
		ws(j.Partition)
		ws(string(j.State))
		wi(j.Submit)
		wi(j.Eligible)
		wi(j.Start)
		wi(j.End)
		wi(int64(j.ReqCPUs))
		wf(j.ReqMemGB)
		wi(int64(j.ReqNodes))
		wi(int64(j.ReqGPUs))
		wi(j.TimeLimit)
		wi(int64(j.Priority))
		wi(int64(j.QOS))
		if j.Interactive {
			wi(1)
		} else {
			wi(0)
		}
		wi(int64(j.DependsOn))
		wu(uint64(js.phase))
	}

	live := e.ring[e.head:]
	wi(int64(len(live)))
	for _, hent := range live {
		wi(int64(hent.id))
		wi(int64(hent.user))
		wi(hent.submit)
	}

	types := make([]string, 0, len(e.counts))
	for ty := range e.counts {
		types = append(types, string(ty))
	}
	sort.Strings(types)
	for _, ty := range types {
		ws(ty)
		wu(e.counts[EventType(ty)])
	}
	return h.Sum64()
}
