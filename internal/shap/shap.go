// Package shap implements Kernel SHAP (Lundberg & Lee 2017), the feature
// attribution method the paper uses to prune its feature set (§III:
// "features with a SHAP value closer to 0 are less impactful ... and can be
// removed"). Kernel SHAP estimates Shapley values model-agnostically by
// fitting a weighted linear model over sampled feature coalitions, with
// absent features marginalized over a background dataset.
package shap

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/tensor"
)

// Explainer computes SHAP values for a black-box regression function.
type Explainer struct {
	// Predict is the model under explanation.
	Predict func([]float64) float64
	// Background supplies replacement values for features outside a
	// coalition; typically a sample of training rows.
	Background [][]float64
	// Samples is the number of random coalitions; 0 means 2048.
	Samples int
	// BackgroundDraws is how many background rows marginalize each
	// coalition; 0 means min(16, len(Background)).
	BackgroundDraws int
	Seed            int64
}

// Explain returns per-feature SHAP values φ for x. They satisfy the local
// accuracy property: Σφ ≈ Predict(x) − E[Predict(background)].
func (e *Explainer) Explain(x []float64) ([]float64, error) {
	m := len(x)
	if m == 0 {
		return nil, fmt.Errorf("shap: empty input")
	}
	if len(e.Background) == 0 {
		return nil, fmt.Errorf("shap: empty background")
	}
	for i, row := range e.Background {
		if len(row) != m {
			return nil, fmt.Errorf("shap: background row %d has %d features, want %d", i, len(row), m)
		}
	}
	if e.Predict == nil {
		return nil, fmt.Errorf("shap: nil predict function")
	}
	if m == 1 {
		// Trivial single-feature case: the value is the full effect.
		return []float64{e.Predict(x) - e.baseValue()}, nil
	}
	samples := e.Samples
	if samples <= 0 {
		samples = 2048
	}
	draws := e.BackgroundDraws
	if draws <= 0 || draws > len(e.Background) {
		draws = len(e.Background)
		if draws > 16 {
			draws = 16
		}
	}
	rng := rand.New(rand.NewSource(e.Seed))

	f0 := e.baseValue()
	fx := e.Predict(x)

	// Sample coalitions z (non-empty, non-full), evaluate the masked
	// prediction, and accumulate the Kernel SHAP weighted least squares.
	// With the constraint Σφ = fx − f0 folded in by eliminating φ_{M−1},
	// the regression has M−1 unknowns.
	dim := m - 1
	ata := tensor.New(dim, dim)
	atb := make([]float64, dim)
	z := make([]bool, m)
	masked := make([]float64, m)
	row := make([]float64, dim)

	// Deterministic enumeration of all size-1 and size-(M−1) coalitions
	// (the highest-weight ones), then random sampling for the rest.
	addCoalition := func(w float64) {
		// Masked prediction marginalized over background draws. When the
		// budget covers the whole background, enumerate it exactly
		// (deterministic and lower-variance than sampling).
		var fz float64
		if draws >= len(e.Background) {
			for _, bg := range e.Background {
				fz += e.maskedPredict(z, x, bg, masked)
			}
			fz /= float64(len(e.Background))
		} else {
			for d := 0; d < draws; d++ {
				bg := e.Background[rng.Intn(len(e.Background))]
				fz += e.maskedPredict(z, x, bg, masked)
			}
			fz /= float64(draws)
		}

		zm := 0.0
		if z[m-1] {
			zm = 1
		}
		for j := 0; j < dim; j++ {
			zj := 0.0
			if z[j] {
				zj = 1
			}
			row[j] = zj - zm
		}
		target := (fz - f0) - zm*(fx-f0)
		for a := 0; a < dim; a++ {
			if row[a] == 0 {
				continue
			}
			wa := w * row[a]
			arow := ata.Row(a)
			for b := 0; b < dim; b++ {
				arow[b] += wa * row[b]
			}
			atb[a] += wa * target
		}
	}

	kernelWeight := func(size int) float64 {
		// π(|z|) = (M−1) / (C(M,|z|)·|z|·(M−|z|))
		return float64(m-1) / (binom(m, size) * float64(size) * float64(m-size))
	}

	for j := 0; j < m; j++ {
		for k := range z {
			z[k] = k == j
		}
		addCoalition(kernelWeight(1))
		for k := range z {
			z[k] = k != j
		}
		addCoalition(kernelWeight(m - 1))
	}
	for s := 0; s < samples; s++ {
		size := 2 + rng.Intn(m-3+1) // sizes 2..M−2 (sizes 1, M−1 enumerated)
		if m < 4 {
			break // no interior sizes to sample
		}
		perm := rng.Perm(m)
		for k := range z {
			z[k] = false
		}
		for _, p := range perm[:size] {
			z[p] = true
		}
		addCoalition(kernelWeight(size))
	}

	// Ridge-stabilize the normal equations slightly.
	for j := 0; j < dim; j++ {
		ata.Set(j, j, ata.At(j, j)+1e-9)
	}
	phi, err := tensor.Solve(ata, atb)
	if err != nil {
		return nil, fmt.Errorf("shap: solving kernel regression: %w", err)
	}
	out := make([]float64, m)
	copy(out, phi)
	var sum float64
	for _, v := range phi {
		sum += v
	}
	out[m-1] = (fx - f0) - sum
	return out, nil
}

// maskedPredict evaluates the model with in-coalition features taken from x
// and the rest from the background row.
func (e *Explainer) maskedPredict(z []bool, x, bg, scratch []float64) float64 {
	for j := range z {
		if z[j] {
			scratch[j] = x[j]
		} else {
			scratch[j] = bg[j]
		}
	}
	return e.Predict(scratch)
}

// baseValue is E[Predict] over the background.
func (e *Explainer) baseValue() float64 {
	var s float64
	for _, bg := range e.Background {
		s += e.Predict(bg)
	}
	return s / float64(len(e.Background))
}

// binom computes C(n, k) in floating point.
func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

// MeanAbs summarizes SHAP values across many explained rows into global
// per-feature importances (mean |φ|), the ranking the paper prunes with.
func MeanAbs(values [][]float64) []float64 {
	if len(values) == 0 {
		return nil
	}
	out := make([]float64, len(values[0]))
	for _, v := range values {
		for j, p := range v {
			out[j] += math.Abs(p)
		}
	}
	for j := range out {
		out[j] /= float64(len(values))
	}
	return out
}

// Ranked pairs feature names with mean-|SHAP| scores, sorted descending.
type Ranked struct {
	Feature string
	Score   float64
}

// Rank builds the sorted global importance table.
func Rank(names []string, meanAbs []float64) []Ranked {
	out := make([]Ranked, len(meanAbs))
	for j, s := range meanAbs {
		name := ""
		if j < len(names) {
			name = names[j]
		}
		out[j] = Ranked{Feature: name, Score: s}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	return out
}
