package nn

import (
	"math"

	"repro/internal/tensor"
)

// TrainWorkspace holds every buffer a Forward(train=true)+Backward pass
// writes: per-layer activations, per-layer input gradients, dropout masks,
// batch-norm statistics, the loss gradient, and the SelectRows gather
// scratch. On a warm trainer the whole batch step — gather, forward, loss,
// backprop, clip, optimizer step — runs with zero steady-state heap
// allocations. A workspace belongs to one goroutine; data-parallel training
// uses one per replica.
type TrainWorkspace struct {
	// xb/yb are the batch gather destinations (SelectRowsInto scratch).
	xb, yb tensor.Matrix
	// grad is the loss-gradient buffer for the built-in losses.
	grad tensor.Matrix
	// fwd[i]/bwd[i] are layer i's output and input-gradient buffers.
	fwd []*tensor.Matrix
	bwd []*tensor.Matrix
	aux []trainAux
}

// trainAux is layer i's backward-pass scratch: cached tensor references for
// dense/activation layers, the dropout mask, and batch-norm statistics.
type trainAux struct {
	in, out *tensor.Matrix // references into fwd buffers (not owned)
	mask    []float64      // dropout
	mean    []float64      // batchnorm batch statistics
	vari    []float64
	std     []float64
	sumG    []float64
	sumGX   []float64
	xhat    tensor.Matrix
}

// NewTrainWorkspace returns an empty training workspace for n's
// architecture; buffers are allocated lazily and grown only when a larger
// batch arrives.
func (n *Network) NewTrainWorkspace() *TrainWorkspace {
	k := len(n.Layers)
	return &TrainWorkspace{
		fwd: make([]*tensor.Matrix, k),
		bwd: make([]*tensor.Matrix, k),
		aux: make([]trainAux, k),
	}
}

// reshape points m at rows x cols, growing its backing array only when too
// small.
func reshape(m *tensor.Matrix, rows, cols int) *tensor.Matrix {
	need := rows * cols
	if cap(m.Data) < need {
		m.Data = make([]float64, need)
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:need]
	return m
}

func (w *TrainWorkspace) fwdBuf(i, rows, cols int) *tensor.Matrix {
	if w.fwd[i] == nil {
		w.fwd[i] = &tensor.Matrix{}
	}
	return reshape(w.fwd[i], rows, cols)
}

func (w *TrainWorkspace) bwdBuf(i, rows, cols int) *tensor.Matrix {
	if w.bwd[i] == nil {
		w.bwd[i] = &tensor.Matrix{}
	}
	return reshape(w.bwd[i], rows, cols)
}

// growFloats resizes *s to n elements reusing capacity.
func growFloats(s *[]float64, n int) []float64 {
	if cap(*s) < n {
		*s = make([]float64, n)
	}
	*s = (*s)[:n]
	return *s
}

// ForwardTrain runs a training-mode forward pass (dropout active, batch-norm
// batch statistics) writing every activation into ws. It is arithmetically
// identical to Forward(in, true) — same kernels, same accumulation order,
// same RNG draw sequence for dropout — without its per-layer allocations.
// The returned matrix is owned by ws and must be consumed before the
// workspace's next use; backward state lives in ws, so pair it with
// BackwardTrain on the same workspace.
func (n *Network) ForwardTrain(ws *TrainWorkspace, in *tensor.Matrix) *tensor.Matrix {
	// Training is about to mutate weights, so any compiled float32
	// inference program is a stale snapshot: drop it. Re-enable with
	// EnableFloat32 once training finishes.
	n.f32.Store(nil)
	x := in
	for i, l := range n.Layers {
		switch ll := l.(type) {
		case *Dense:
			if x.Cols != ll.In {
				panic("nn: dense input width mismatch")
			}
			out := ws.fwdBuf(i, x.Rows, ll.Out)
			tensor.MatMulInto(x, ll.W, out)
			out.AddRowVector(ll.B.Data)
			ws.aux[i].in = x
			x = out
		case *Activation:
			out := ws.fwdBuf(i, x.Rows, x.Cols)
			for j, v := range x.Data {
				out.Data[j] = activate(ll.Kind, v)
			}
			ws.aux[i].in, ws.aux[i].out = x, out
			x = out
		case *Dropout:
			if ll.Rate == 0 {
				ws.aux[i].mask = nil
				continue
			}
			keep := 1 - ll.Rate
			scale := 1 / keep
			mask := growFloats(&ws.aux[i].mask, len(x.Data))
			out := ws.fwdBuf(i, x.Rows, x.Cols)
			for j, v := range x.Data {
				if ll.rng.Float64() < keep {
					mask[j] = scale
					out.Data[j] = v * scale
				} else {
					mask[j] = 0
					out.Data[j] = 0
				}
			}
			x = out
		case *BatchNorm:
			x = ll.forwardTrainInto(ws, i, x)
		default:
			// Unknown layer kinds fall back to their own allocating path
			// (they cache backward state internally).
			x = l.Forward(x, true)
		}
	}
	return x
}

// forwardTrainInto is BatchNorm's training forward into workspace buffers,
// mirroring Forward(in, true) exactly: batch statistics (and running-stat
// updates) for multi-row batches, running statistics for single rows.
func (b *BatchNorm) forwardTrainInto(ws *TrainWorkspace, i int, in *tensor.Matrix) *tensor.Matrix {
	if in.Cols != b.Dim {
		panic("nn: batchnorm input width mismatch")
	}
	aux := &ws.aux[i]
	var mean, variance []float64
	if in.Rows > 1 {
		mean = growFloats(&aux.mean, b.Dim)
		variance = growFloats(&aux.vari, b.Dim)
		// Same summation order as ColMeans/ColVariances (row-major, rows
		// outer) so results match the allocating path bit for bit.
		for j := range mean {
			mean[j], variance[j] = 0, 0
		}
		for r := 0; r < in.Rows; r++ {
			for j, v := range in.Row(r) {
				mean[j] += v
			}
		}
		inv := 1.0 / float64(in.Rows)
		for j := range mean {
			mean[j] *= inv
		}
		for r := 0; r < in.Rows; r++ {
			for j, v := range in.Row(r) {
				d := v - mean[j]
				variance[j] += d * d
			}
		}
		for j := range variance {
			variance[j] *= inv
		}
		for j := range mean {
			b.RunMean[j] = b.Momentum*b.RunMean[j] + (1-b.Momentum)*mean[j]
			b.RunVar[j] = b.Momentum*b.RunVar[j] + (1-b.Momentum)*variance[j]
		}
	} else {
		mean, variance = b.RunMean, b.RunVar
	}
	std := growFloats(&aux.std, b.Dim)
	for j := range std {
		std[j] = math.Sqrt(variance[j] + b.Eps)
	}
	xhat := reshape(&aux.xhat, in.Rows, in.Cols)
	out := ws.fwdBuf(i, in.Rows, in.Cols)
	for r := 0; r < in.Rows; r++ {
		row := in.Row(r)
		xr := xhat.Row(r)
		or := out.Row(r)
		for j, v := range row {
			xr[j] = (v - mean[j]) / std[j]
			or[j] = b.Gamma.Data[j]*xr[j] + b.Beta.Data[j]
		}
	}
	return out
}

// BackwardTrain propagates the loss gradient through the stack using ws's
// cached forward state, accumulating parameter gradients exactly like
// Backward — the dense weight gradient streams through MatMulTransAAccum
// instead of materializing inᵀ and a product matrix.
func (n *Network) BackwardTrain(ws *TrainWorkspace, grad *tensor.Matrix) {
	g := grad
	for i := len(n.Layers) - 1; i >= 0; i-- {
		switch ll := n.Layers[i].(type) {
		case *Dense:
			tensor.MatMulTransAAccum(ws.aux[i].in, g, ll.gradW)
			for r := 0; r < g.Rows; r++ {
				for j, v := range g.Row(r) {
					ll.gradB.Data[j] += v
				}
			}
			out := ws.bwdBuf(i, g.Rows, ll.In)
			tensor.MatMulTransBInto(g, ll.W, out)
			g = out
		case *Activation:
			out := ws.bwdBuf(i, g.Rows, g.Cols)
			ain, aout := ws.aux[i].in, ws.aux[i].out
			for j, gv := range g.Data {
				out.Data[j] = gv * activateGrad(ll.Kind, ain.Data[j], aout.Data[j])
			}
			g = out
		case *Dropout:
			mask := ws.aux[i].mask
			if mask == nil {
				continue
			}
			out := ws.bwdBuf(i, g.Rows, g.Cols)
			for j, gv := range g.Data {
				out.Data[j] = gv * mask[j]
			}
			g = out
		case *BatchNorm:
			g = ll.backwardInto(ws, i, g)
		default:
			g = n.Layers[i].Backward(g)
		}
	}
}

// backwardInto is BatchNorm's backward pass over workspace state, matching
// Backward's arithmetic exactly.
func (b *BatchNorm) backwardInto(ws *TrainWorkspace, i int, gradOut *tensor.Matrix) *tensor.Matrix {
	aux := &ws.aux[i]
	n := float64(gradOut.Rows)
	out := ws.bwdBuf(i, gradOut.Rows, gradOut.Cols)
	sumG := growFloats(&aux.sumG, b.Dim)
	sumGX := growFloats(&aux.sumGX, b.Dim)
	for j := range sumG {
		sumG[j], sumGX[j] = 0, 0
	}
	for r := 0; r < gradOut.Rows; r++ {
		gr := gradOut.Row(r)
		xr := aux.xhat.Row(r)
		for j, g := range gr {
			sumG[j] += g
			sumGX[j] += g * xr[j]
		}
	}
	for j := 0; j < b.Dim; j++ {
		b.gradGamma.Data[j] += sumGX[j]
		b.gradBeta.Data[j] += sumG[j]
	}
	std := aux.std
	for r := 0; r < gradOut.Rows; r++ {
		gr := gradOut.Row(r)
		xr := aux.xhat.Row(r)
		or := out.Row(r)
		for j, g := range gr {
			or[j] = (b.Gamma.Data[j] / std[j]) * (g - sumG[j]/n - xr[j]*sumGX[j]/n)
		}
	}
	return out
}
