package hyperopt

import (
	"math"
	"testing"
)

func quadSpace() []Param {
	return []Param{
		Uniform("x", -10, 10),
		LogUniform("lr", 1e-5, 1e-1),
		IntRange("layers", 1, 4),
		Categorical("act", "relu", "elu"),
	}
}

func TestSearchFindsGoodX(t *testing.T) {
	// Minimize (x-3)^2: with 200 random trials the best x should be
	// close to 3.
	res, err := Search(Config{Trials: 200, Seed: 1}, quadSpace(), func(tr *Trial, _ int) float64 {
		d := tr.Float("x") - 3
		return d * d
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Best.Float("x")-3) > 0.5 {
		t.Fatalf("best x = %v", res.Best.Float("x"))
	}
	if len(res.Trials) != 200 {
		t.Fatalf("%d trials", len(res.Trials))
	}
}

func TestSampledValuesInRange(t *testing.T) {
	res, err := Search(Config{Trials: 100, Seed: 2}, quadSpace(), func(tr *Trial, _ int) float64 {
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Trials {
		if x := tr.Float("x"); x < -10 || x > 10 {
			t.Fatalf("x=%v out of range", x)
		}
		if lr := tr.Float("lr"); lr < 1e-5 || lr > 1e-1 {
			t.Fatalf("lr=%v out of range", lr)
		}
		if l := tr.Int("layers"); l < 1 || l > 4 {
			t.Fatalf("layers=%d out of range", l)
		}
		if a := tr.Cat("act"); a != "relu" && a != "elu" {
			t.Fatalf("act=%q", a)
		}
	}
}

func TestLogUniformCoversDecades(t *testing.T) {
	res, _ := Search(Config{Trials: 300, Seed: 3}, []Param{LogUniform("lr", 1e-5, 1e-1)},
		func(tr *Trial, _ int) float64 { return 0 })
	decades := map[int]int{}
	for _, tr := range res.Trials {
		decades[int(math.Floor(math.Log10(tr.Float("lr"))))]++
	}
	// All four decades [1e-5,1e-1) should be hit.
	for d := -5; d <= -2; d++ {
		if decades[d] == 0 {
			t.Fatalf("decade 1e%d never sampled: %v", d, decades)
		}
	}
}

func TestSuccessiveHalvingPrunes(t *testing.T) {
	evals := map[int]int{}
	res, err := Search(Config{
		Trials: 27, Seed: 4, Halving: true, MinBudget: 1, MaxBudget: 9, Eta: 3,
	}, []Param{Uniform("x", 0, 1)}, func(tr *Trial, budget int) float64 {
		evals[tr.ID]++
		return tr.Float("x")
	})
	if err != nil {
		t.Fatal(err)
	}
	pruned := 0
	for _, tr := range res.Trials {
		if tr.Pruned {
			pruned++
		}
	}
	if pruned == 0 {
		t.Fatal("halving pruned nothing")
	}
	if res.Best.Pruned {
		t.Fatal("best trial is pruned")
	}
	// The survivor must have reached the max budget.
	if res.Best.Budget != 9 {
		t.Fatalf("best budget %d, want 9", res.Best.Budget)
	}
	// Pruned trials were evaluated fewer times than the winner.
	if evals[res.Best.ID] < 2 {
		t.Fatalf("winner evaluated %d times", evals[res.Best.ID])
	}
}

func TestHalvingSpendsLessThanFull(t *testing.T) {
	var fullCost, halvingCost int
	Search(Config{Trials: 27, Seed: 5}, []Param{Uniform("x", 0, 1)},
		func(tr *Trial, budget int) float64 { fullCost += 9; return tr.Float("x") })
	Search(Config{Trials: 27, Seed: 5, Halving: true, MinBudget: 1, MaxBudget: 9, Eta: 3},
		[]Param{Uniform("x", 0, 1)},
		func(tr *Trial, budget int) float64 { halvingCost += budget; return tr.Float("x") })
	if halvingCost >= fullCost {
		t.Fatalf("halving cost %d >= full cost %d", halvingCost, fullCost)
	}
}

func TestConfigErrors(t *testing.T) {
	ok := []Param{Uniform("x", 0, 1)}
	obj := func(tr *Trial, _ int) float64 { return 0 }
	if _, err := Search(Config{}, nil, obj); err == nil {
		t.Fatal("empty space accepted")
	}
	if _, err := Search(Config{}, ok, nil); err == nil {
		t.Fatal("nil objective accepted")
	}
	if _, err := Search(Config{Halving: true}, ok, obj); err == nil {
		t.Fatal("bad halving budgets accepted")
	}
	if _, err := Search(Config{}, []Param{Uniform("x", 5, 1)}, obj); err == nil {
		t.Fatal("max<min accepted")
	}
	if _, err := Search(Config{}, []Param{LogUniform("x", 0, 1)}, obj); err == nil {
		t.Fatal("log with min=0 accepted")
	}
}

func TestDeterministicSearch(t *testing.T) {
	obj := func(tr *Trial, _ int) float64 { return tr.Float("x") }
	a, _ := Search(Config{Trials: 50, Seed: 9}, quadSpace(), obj)
	b, _ := Search(Config{Trials: 50, Seed: 9}, quadSpace(), obj)
	if a.Best.Float("x") != b.Best.Float("x") {
		t.Fatal("search not deterministic")
	}
}
