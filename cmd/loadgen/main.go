// Command loadgen drives a running troutd with a mixed workload and prints
// a latency/error scorecard — the traffic source for capacity checks and
// the fault-injection suite.
//
//	loadgen -url http://localhost:8642 -duration 30s -concurrency 8
//	loadgen -url http://localhost:8642 -requests 5000 -rate 200 -mix 60,30,10
//	loadgen -url http://localhost:8642 -duration 10s -strict -json
//
// Closed loop by default (each worker waits for its response before the
// next request); -rate switches to open loop, pacing arrivals globally at
// the target rate so an overloaded server accumulates queueing and sheds
// (visible as 429s and dropped arrivals) instead of silently slowing the
// generator down.
//
// -strict applies the fault-window response contract: every response must
// be a valid prediction/ingest ack, a structured JSON error, or a 429
// carrying Retry-After. Invalid responses fail the run (exit 1).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

func main() {
	var (
		url         = flag.String("url", "http://localhost:8642", "base URL of the target troutd")
		duration    = flag.Duration("duration", 10*time.Second, "run length (ignored if -requests > 0 finishes first)")
		requests    = flag.Int("requests", 0, "stop after this many requests (0 = duration only)")
		concurrency = flag.Int("concurrency", 4, "concurrent workers")
		rate        = flag.Float64("rate", 0, "open-loop arrivals per second (0 = closed loop)")
		mix         = flag.String("mix", "70,20,10", "predict,batch,events weights")
		batchSize   = flag.Int("batch", 8, "jobs per /predict/batch request")
		at          = flag.Int64("at", 0, "prediction instant (unix seconds; 0 = now)")
		seed        = flag.Int64("seed", 1, "randomness seed")
		strict      = flag.Bool("strict", false, "enforce the fault-window response contract; invalid responses fail the run")
		maxErrRate  = flag.Float64("max-error-rate", -1, "fail the run if the hard-error rate exceeds this (-1 = report only)")
		jsonOut     = flag.Bool("json", false, "emit the scorecard as JSON")
	)
	flag.Parse()

	weights := strings.Split(*mix, ",")
	if len(weights) != 3 {
		fmt.Fprintln(os.Stderr, "loadgen: -mix wants three comma-separated weights")
		os.Exit(2)
	}
	var w [3]int
	for i, s := range weights {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 0 {
			fmt.Fprintf(os.Stderr, "loadgen: bad -mix weight %q\n", s)
			os.Exit(2)
		}
		w[i] = n
	}
	if w[0]+w[1]+w[2] == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -mix weights sum to zero")
		os.Exit(2)
	}

	cfg := loadgen.Config{
		BaseURL:       strings.TrimRight(*url, "/"),
		Duration:      *duration,
		Requests:      *requests,
		Concurrency:   *concurrency,
		RatePerSec:    *rate,
		PredictWeight: w[0], BatchWeight: w[1], EventsWeight: w[2],
		BatchSize: *batchSize,
		At:        *at,
		Seed:      *seed,
	}
	if cfg.At == 0 {
		cfg.At = time.Now().Unix()
	}
	if *strict {
		cfg.Validate = loadgen.StrictValidate
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sc, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sc); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(2)
		}
	} else {
		fmt.Print(sc.String())
	}

	if *strict && sc.Invalid > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d invalid responses under -strict\n", sc.Invalid)
		os.Exit(1)
	}
	if *maxErrRate >= 0 && sc.ErrorRate > *maxErrRate {
		fmt.Fprintf(os.Stderr, "loadgen: error rate %.4f exceeds -max-error-rate %.4f\n", sc.ErrorRate, *maxErrRate)
		os.Exit(1)
	}
}
