package tensor

import "sync"

// pool recycles matrix backing arrays so steady-state hot paths (batched
// inference, per-request feature staging) stop hitting the heap. Matrices
// are pooled by capacity, not shape: Get reshapes whatever buffer comes
// back, growing it only when too small.
var pool = sync.Pool{}

// Get returns a rows x cols matrix whose contents are unspecified — callers
// must overwrite every element (MatMulInto and the nn inference kernels do).
// Return it with Put when done.
func Get(rows, cols int) *Matrix {
	need := rows * cols
	if v := pool.Get(); v != nil {
		m := v.(*Matrix)
		if cap(m.Data) >= need {
			m.Rows, m.Cols = rows, cols
			m.Data = m.Data[:need]
			return m
		}
	}
	return New(rows, cols)
}

// GetZeroed is Get with every element cleared.
func GetZeroed(rows, cols int) *Matrix {
	m := Get(rows, cols)
	m.Zero()
	return m
}

// Put returns a matrix obtained from Get to the pool. The caller must not
// use m (or any row view of it) afterwards. nil is a no-op, so deferred
// cleanup of conditionally-acquired buffers stays branch-free.
func Put(m *Matrix) {
	if m == nil || cap(m.Data) == 0 {
		return
	}
	pool.Put(m)
}
