package scaling

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewUnknownKind(t *testing.T) {
	if _, err := New("bogus"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestKindsConstructAll(t *testing.T) {
	for _, k := range Kinds() {
		s, err := New(k)
		if err != nil {
			t.Fatalf("New(%s): %v", k, err)
		}
		if s.Kind() != k {
			t.Fatalf("Kind() = %s, want %s", s.Kind(), k)
		}
	}
}

func TestNoneIsIdentity(t *testing.T) {
	s, _ := New(None)
	s.Fit([][]float64{{1, 2}})
	row := []float64{3.5, -1}
	out := s.Transform(row)
	if out[0] != 3.5 || out[1] != -1 {
		t.Fatalf("None transform = %v", out)
	}
	out[0] = 99
	if row[0] == 99 {
		t.Fatal("None must copy, not alias")
	}
}

func TestLog1p(t *testing.T) {
	s, _ := New(Log1p)
	out := s.Transform([]float64{0, math.E - 1, -5})
	if out[0] != 0 {
		t.Fatalf("log1p(0) = %v", out[0])
	}
	if math.Abs(out[1]-1) > 1e-12 {
		t.Fatalf("log1p(e-1) = %v", out[1])
	}
	if out[2] != 0 {
		t.Fatalf("negative input should clamp to 0, got %v", out[2])
	}
}

func TestMinMax(t *testing.T) {
	s, _ := New(MinMax)
	s.Fit([][]float64{{0, 10}, {10, 20}, {5, 15}})
	out := s.Transform([]float64{5, 15})
	if math.Abs(out[0]-0.5) > 1e-12 || math.Abs(out[1]-0.5) > 1e-12 {
		t.Fatalf("MinMax transform = %v", out)
	}
	// Out-of-range test values extrapolate, by design.
	out = s.Transform([]float64{20, 10})
	if out[0] != 2 || out[1] != 0 {
		t.Fatalf("extrapolated = %v", out)
	}
}

func TestMinMaxConstantColumn(t *testing.T) {
	s, _ := New(MinMax)
	s.Fit([][]float64{{7}, {7}})
	out := s.Transform([]float64{7})
	if math.IsNaN(out[0]) || math.IsInf(out[0], 0) {
		t.Fatal("constant column produced non-finite output")
	}
}

func TestStandard(t *testing.T) {
	s, _ := New(Standard)
	rows := [][]float64{{1}, {2}, {3}, {4}}
	s.Fit(rows)
	tr := TransformAll(s, rows)
	var mean float64
	for _, r := range tr {
		mean += r[0]
	}
	mean /= 4
	if math.Abs(mean) > 1e-12 {
		t.Fatalf("standardized mean = %v", mean)
	}
	var vr float64
	for _, r := range tr {
		vr += r[0] * r[0]
	}
	if math.Abs(vr/4-1) > 1e-12 {
		t.Fatalf("standardized variance = %v", vr/4)
	}
}

func TestUnfittedTransformsPassThrough(t *testing.T) {
	for _, k := range []Kind{MinMax, Standard, BoxCox} {
		s, _ := New(k)
		out := s.Transform([]float64{1, 2, 3})
		if out[0] != 1 || out[2] != 3 {
			t.Fatalf("%s unfitted transform = %v", k, out)
		}
	}
}

func TestBoxCoxReducesSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, 500)
	for i := range rows {
		// Strongly right-skewed: exp of a normal.
		rows[i] = []float64{math.Exp(rng.NormFloat64() * 2)}
	}
	s, _ := New(BoxCox)
	s.Fit(rows)
	tr := TransformAll(s, rows)
	if skewness(column(tr, 0)) >= skewness(column(rows, 0))/2 {
		t.Fatal("Box-Cox did not reduce skewness of log-normal data")
	}
}

func TestBoxCoxLogCase(t *testing.T) {
	// λ=0 must behave as log.
	if math.Abs(boxCox(math.E, 0)-1) > 1e-12 {
		t.Fatalf("boxCox(e, 0) = %v", boxCox(math.E, 0))
	}
	// λ=1 is a pure shift: x-1.
	if boxCox(5, 1) != 4 {
		t.Fatalf("boxCox(5,1) = %v", boxCox(5, 1))
	}
}

func TestBoxCoxHandlesNonPositive(t *testing.T) {
	s, _ := New(BoxCox)
	s.Fit([][]float64{{-3}, {0}, {5}})
	for _, v := range []float64{-3, 0, 5, -10} {
		out := s.Transform([]float64{v})
		if math.IsNaN(out[0]) || math.IsInf(out[0], 0) {
			t.Fatalf("Box-Cox(%v) non-finite", v)
		}
	}
}

// Property: every scaler produces finite outputs on finite inputs and
// preserves row length.
func TestScalersFiniteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nRows := 2 + rng.Intn(20)
		nCols := 1 + rng.Intn(5)
		rows := make([][]float64, nRows)
		for i := range rows {
			rows[i] = make([]float64, nCols)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64() * 100
			}
		}
		for _, k := range Kinds() {
			s, err := New(k)
			if err != nil {
				return false
			}
			s.Fit(rows)
			for _, r := range rows {
				out := s.Transform(r)
				if len(out) != nCols {
					return false
				}
				for _, v := range out {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func column(rows [][]float64, j int) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = r[j]
	}
	return out
}

func skewness(xs []float64) float64 {
	n := float64(len(xs))
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= n
	var m2, m3 float64
	for _, x := range xs {
		d := x - mean
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}
