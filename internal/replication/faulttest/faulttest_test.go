package faulttest

import (
	"context"

	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/livestate"
	"repro/internal/replication"
	"repro/internal/resilience"
	"repro/internal/trace"
)

func mkJob(id, user int, part string, submit int64) trace.Job {
	return trace.Job{
		ID: id, User: user, Partition: part, State: trace.StateCompleted,
		Submit: submit, ReqCPUs: 4, ReqMemGB: 8, ReqNodes: 1, TimeLimit: 3600, Priority: 1000,
	}
}

func feed(t *testing.T, s *livestate.Store, firstID, n int) {
	t.Helper()
	for i := firstID; i < firstID+n; i++ {
		j := mkJob(i, i%3, "shared", int64(1000+10*i))
		if err := s.Apply(livestate.Event{Type: livestate.EventSubmit, Time: j.Submit, Job: &j}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if err := s.Apply(livestate.Event{Type: livestate.EventEligible, Time: int64(1001 + 10*i), JobID: i}); err != nil {
			t.Fatalf("eligible %d: %v", i, err)
		}
	}
}

var fastRetry = resilience.Policy{InitialInterval: 5 * time.Millisecond, MaxInterval: 50 * time.Millisecond}

func startFollower(t *testing.T, url string, client *http.Client) (*replication.Follower, *livestate.Store) {
	t.Helper()
	fs, err := livestate.OpenStore(livestate.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	f, err := replication.NewFollower(replication.FollowerConfig{
		LeaderURL: url, Store: fs, Client: client,
		Retry: fastRetry, PollWait: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = f.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("follower did not stop")
		}
	})
	return f, fs
}

func waitConverged(t *testing.T, what string, leader func() *livestate.Store, follower *livestate.Store) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		lm, fm := leader().Metrics(), follower.Metrics()
		if fm.LSN == lm.LSN && fm.Gen == lm.Gen {
			if lf, ff := leader().Engine().Fingerprint(), follower.Engine().Fingerprint(); lf == ff {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	lm, fm := leader().Metrics(), follower.Metrics()
	t.Fatalf("timed out waiting for %s: leader lsn=%d gen=%d, follower lsn=%d gen=%d",
		what, lm.LSN, lm.Gen, fm.LSN, fm.Gen)
}

// TestCrashRestartSmoke is the CI fault smoke: a leader is crash-killed
// mid-stream (no Close, no sync, connections dropped), a torn half-record
// is left on its WAL, and it restarts — the follower rides through the
// outage on retry/backoff and converges to the recovered leader with no
// acknowledged event lost.
func TestCrashRestartSmoke(t *testing.T) {
	h := NewHarness(t, livestate.StoreOptions{SyncEvery: -1, SegmentBytes: 4096})
	_, fs := startFollower(t, h.URL(), nil)

	feed(t, h.Store(), 1, 25)
	if err := h.Store().Sync(); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, "pre-crash catch-up", h.Store, fs)

	durableAtKill := h.Kill()

	// The crash tore a record mid-write: append a plausible-looking frame
	// prefix with no payload behind it.
	wal := filepath.Join(h.dir, "events.wal")
	fd, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fd.Write([]byte{0x80, 0x01, '{', '"', 't'}); err != nil {
		t.Fatal(err)
	}
	fd.Close()

	// While the leader is down, the URL must refuse abruptly, not hang.
	resp, err := http.Get(h.URL() + "/replication/status")
	if err == nil {
		resp.Body.Close()
		t.Fatal("killed leader still answered")
	}

	h.Restart()
	if got := h.Store().Metrics().LSN; got < durableAtKill {
		t.Fatalf("acked events lost: recovered LSN %d < durable-at-kill %d", got, durableAtKill)
	}

	feed(t, h.Store(), 500, 10) // the restarted leader keeps accepting writes
	if err := h.Store().Sync(); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, "post-restart convergence", h.Store, fs)
}

// TestTornSegmentForcesResnapshot truncates the leader's WAL mid-record
// such that already-shipped records vanish: the recovered leader is behind
// the follower, which must detect divergence (409) and heal by
// re-snapshotting down to the leader's truth.
func TestTornSegmentForcesResnapshot(t *testing.T) {
	h := NewHarness(t, livestate.StoreOptions{SyncEvery: -1})
	f, fs := startFollower(t, h.URL(), nil)

	feed(t, h.Store(), 1, 20)
	waitConverged(t, "pre-crash catch-up", h.Store, fs)

	h.Kill()
	h.TearActiveWAL(10) // cuts into shipped bytes: leader rewinds past the follower
	h.Restart()

	if lm, fm := h.Store().Metrics(), fs.Metrics(); lm.LSN >= fm.LSN {
		t.Fatalf("precondition: truncation did not rewind the leader (leader %d, follower %d)", lm.LSN, fm.LSN)
	}
	waitConverged(t, "post-truncation healing", h.Store, fs)
	if f.Stats().Resnapshots == 0 {
		t.Fatal("diverged follower must heal via re-snapshot")
	}
}

// TestFollowerConvergesOverFaultyNetwork drives replication through a
// transport that injects hard errors, timeouts, slow reads, and mid-body
// failures, and requires exact convergence anyway.
func TestFollowerConvergesOverFaultyNetwork(t *testing.T) {
	h := NewHarness(t, livestate.StoreOptions{SyncEvery: -1, SegmentBytes: 2048})
	ft := &FlakyTransport{
		FailEveryN:     3,
		TimeoutEveryN:  7,
		HangFor:        10 * time.Millisecond,
		SlowEveryN:     5,
		SlowBy:         5 * time.Millisecond,
		BodyFailEveryN: 4,
		BodyFailAfter:  32,
	}
	f, fs := startFollower(t, h.URL(), &http.Client{Transport: ft})

	for batch := 0; batch < 5; batch++ {
		feed(t, h.Store(), 1+batch*100, 15)
		time.Sleep(10 * time.Millisecond) // interleave faults with tailing
	}
	waitConverged(t, "convergence over faulty network", h.Store, fs)
	if ft.Injected() == 0 {
		t.Fatal("fault schedule injected nothing; test proved the happy path only")
	}
	if f.Stats().FetchErrors == 0 {
		t.Fatal("follower never observed an injected fault")
	}
}

// TestKillDuringLongPoll crashes the leader while a follower long-poll is
// parked on the updated channel; the follower must notice the dead
// connection, back off, and resume after restart.
func TestKillDuringLongPoll(t *testing.T) {
	h := NewHarness(t, livestate.StoreOptions{SyncEvery: -1})
	_, fs := startFollower(t, h.URL(), nil)
	feed(t, h.Store(), 1, 5)
	waitConverged(t, "catch-up", h.Store, fs)

	// The follower is now parked in a long-poll with nothing to ship.
	time.Sleep(20 * time.Millisecond)
	h.Kill()
	time.Sleep(30 * time.Millisecond) // let the poll die and retries begin
	h.Restart()
	feed(t, h.Store(), 100, 5)
	if err := h.Store().Sync(); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, "resume after kill during long-poll", h.Store, fs)
}

// TestHarnessStatusRoundTrip sanity-checks the harness serving path itself
// so fault tests fail for replication reasons, not harness bugs.
func TestHarnessStatusRoundTrip(t *testing.T) {
	h := NewHarness(t, livestate.StoreOptions{SyncEvery: -1})
	feed(t, h.Store(), 1, 2)
	resp, err := http.Get(h.URL() + "/replication/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status endpoint: %d", resp.StatusCode)
	}
	if resp.Header.Get(replication.HeaderLeaderLSN) == "" {
		t.Fatal("missing leader LSN header")
	}
	if h.Leader().Stats().WALRequests != 0 {
		t.Fatalf("unexpected WAL requests: %+v", h.Leader().Stats())
	}
}
