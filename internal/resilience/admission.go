package resilience

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// Admission decisions, the values OnDecision receives and the label values
// of the service's trout_admission_total counter.
const (
	AdmissionAccepted     = "accepted"
	AdmissionShedQueue    = "shed_queue_full"
	AdmissionShedTimeout  = "shed_timeout"
	AdmissionShedCanceled = "shed_canceled"
)

// AdmissionConfig bounds concurrent work on an ingest path so a burst
// load-sheds with 429s instead of piling onto the engine lock and taking
// latency (or the upstream scheduler feed) down with it. The zero value
// picks production-safe defaults; MaxInFlight < 0 disables the gate.
type AdmissionConfig struct {
	// MaxInFlight requests may run concurrently past the gate. 0 means 16;
	// negative disables admission control entirely.
	MaxInFlight int
	// MaxQueue requests may wait for a slot; arrivals beyond the watermark
	// are shed immediately. 0 means 64; negative allows no queueing.
	MaxQueue int
	// QueueTimeout sheds a queued request that cannot get a slot in time.
	// 0 means 1s.
	QueueTimeout time.Duration
	// RetryAfter is the client backoff hint on 429 responses. 0 means 1s.
	RetryAfter time.Duration
	// OnDecision, when set, observes every admission decision — the
	// metrics hook (one of the Admission* constants).
	OnDecision func(decision string)
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 16
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = time.Second
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Admission is a bounded-concurrency gate with a queue-depth watermark.
// Disabled (nil or MaxInFlight < 0) it admits everything.
type Admission struct {
	cfg      AdmissionConfig
	sem      chan struct{}
	queued   atomic.Int64
	inflight atomic.Int64
}

// NewAdmission builds the gate. A MaxInFlight < 0 config returns a gate
// that admits everything (Middleware becomes a no-op).
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.MaxInFlight < 0 {
		return &Admission{cfg: cfg}
	}
	cfg = cfg.withDefaults()
	return &Admission{cfg: cfg, sem: make(chan struct{}, cfg.MaxInFlight)}
}

// InFlight returns the requests currently holding a slot.
func (a *Admission) InFlight() int64 { return a.inflight.Load() }

// Queued returns the requests currently waiting for a slot.
func (a *Admission) Queued() int64 { return a.queued.Load() }

func (a *Admission) decide(decision string) {
	if a.cfg.OnDecision != nil {
		a.cfg.OnDecision(decision)
	}
}

// shed writes the structured 429 with the Retry-After hint.
func (a *Admission) shed(w http.ResponseWriter, why string) {
	secs := int(a.cfg.RetryAfter / time.Second)
	if a.cfg.RetryAfter%time.Second != 0 || secs == 0 {
		secs++ // Retry-After is whole seconds; round up
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	WriteError(w, http.StatusTooManyRequests, why)
}

// Middleware gates next behind the admission check: a free slot admits
// immediately; otherwise the request queues up to the watermark and
// timeout, and anything beyond either sheds with a 429 + Retry-After
// before any body processing or engine locking happens.
func (a *Admission) Middleware(next http.Handler) http.Handler {
	if a == nil || a.sem == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case a.sem <- struct{}{}:
			// Fast path: a slot was free.
		default:
			if q := a.queued.Add(1); q > int64(a.cfg.MaxQueue) {
				a.queued.Add(-1)
				a.decide(AdmissionShedQueue)
				a.shed(w, fmt.Sprintf("ingest overloaded: %d in flight, queue full", a.inflight.Load()))
				return
			}
			t := time.NewTimer(a.cfg.QueueTimeout)
			select {
			case a.sem <- struct{}{}:
				t.Stop()
				a.queued.Add(-1)
			case <-t.C:
				a.queued.Add(-1)
				a.decide(AdmissionShedTimeout)
				a.shed(w, fmt.Sprintf("ingest overloaded: no capacity within %s", a.cfg.QueueTimeout))
				return
			case <-r.Context().Done():
				t.Stop()
				a.queued.Add(-1)
				a.decide(AdmissionShedCanceled)
				return // client gone; nothing useful to write
			}
		}
		a.inflight.Add(1)
		a.decide(AdmissionAccepted)
		defer func() {
			a.inflight.Add(-1)
			<-a.sem
		}()
		next.ServeHTTP(w, r)
	})
}
