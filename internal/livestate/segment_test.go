package livestate

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// applyAll replays a ReadWAL byte stream into a follower store, returning
// the applied count.
func applyAll(t *testing.T, dst *Store, stream []byte) int {
	t.Helper()
	sc := NewWALScanner(bytes.NewReader(stream))
	n := 0
	for {
		lsn, ev, err := sc.Next()
		if err == io.EOF {
			return n
		}
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		if lsn <= dst.Metrics().LSN {
			continue
		}
		if err := dst.ApplyAt(lsn, ev); err != nil {
			t.Fatalf("applyAt %d: %v", lsn, err)
		}
		n++
	}
}

func TestSegmentRotationAndRead(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force several rotations over a small stream.
	s, err := OpenStore(StoreOptions{Dir: dir, SyncEvery: -1, SegmentBytes: 512, RetainSegments: -1})
	if err != nil {
		t.Fatal(err)
	}
	streamEvents(t, s, 1, 40)
	m := s.Metrics()
	if m.Segments == 0 {
		t.Fatalf("no rotation happened: %+v", m)
	}
	if m.OldestLSN != 1 {
		t.Fatalf("oldest LSN %d, want 1 (nothing pruned)", m.OldestLSN)
	}
	if m.DurableLSN != m.LSN {
		t.Fatalf("durable %d != lsn %d with SyncEvery=-1", m.DurableLSN, m.LSN)
	}

	// A follower replaying the shipped stream must converge bit for bit.
	var buf bytes.Buffer
	last, _, err := s.ReadWAL(0, 1<<30, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if last != m.LSN {
		t.Fatalf("ReadWAL reached %d, want %d", last, m.LSN)
	}
	f, err := OpenStore(StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	applyAll(t, f, buf.Bytes())
	if lf, ls := f.Engine().Fingerprint(), s.Engine().Fingerprint(); lf != ls {
		t.Fatalf("follower fingerprint %x != leader %x", lf, ls)
	}

	// Recovery must replay sealed segments + active tail identically.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(StoreOptions{Dir: dir, SegmentBytes: 512, RetainSegments: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, want := s2.Engine().Fingerprint(), f.Engine().Fingerprint(); got != want {
		t.Fatalf("recovered fingerprint %x != replicated %x", got, want)
	}
}

func TestReadWALFromMiddleAndLongTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(StoreOptions{Dir: dir, SyncEvery: -1, SegmentBytes: 256, RetainSegments: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	streamEvents(t, s, 1, 20)
	lsn := s.Metrics().LSN

	// Start mid-stream: only records past `from` are shipped.
	from := lsn / 2
	var buf bytes.Buffer
	last, _, err := s.ReadWAL(from, 1<<30, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if last != lsn {
		t.Fatalf("last %d want %d", last, lsn)
	}
	sc := NewWALScanner(bytes.NewReader(buf.Bytes()))
	firstLSN, _, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	if firstLSN != from+1 {
		t.Fatalf("first shipped LSN %d, want %d", firstLSN, from+1)
	}

	// At the head: nothing new, no error.
	buf.Reset()
	last, n, err := s.ReadWAL(lsn, 1<<30, &buf)
	if err != nil || n != 0 || last != lsn {
		t.Fatalf("at-head read: last=%d n=%d err=%v", last, n, err)
	}
}

func TestReadWALSubsumedAfterPrune(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(StoreOptions{Dir: dir, SyncEvery: -1, SegmentBytes: 256, RetainSegments: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	streamEvents(t, s, 1, 30)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Segments > 1 {
		t.Fatalf("retention kept %d segments, want <= 1", m.Segments)
	}
	if m.OldestLSN <= 1 {
		t.Fatalf("nothing pruned: oldest %d", m.OldestLSN)
	}
	var buf bytes.Buffer
	if _, _, err := s.ReadWAL(0, 1<<30, &buf); err != ErrSubsumed {
		t.Fatalf("pre-prune read err = %v, want ErrSubsumed", err)
	}
}

func TestApplyAtContiguity(t *testing.T) {
	s, err := OpenStore(StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j := mkJob(1, 1, "shared", 1000, 0, 0, 0)
	if err := s.ApplyAt(1, submitEvent(j)); err != nil {
		t.Fatal(err)
	}
	// A gap and a rewind must both be refused as *LSNGapError.
	j2 := mkJob(2, 1, "shared", 1010, 0, 0, 0)
	err = s.ApplyAt(3, submitEvent(j2))
	if _, ok := err.(*LSNGapError); !ok {
		t.Fatalf("gap err = %v, want *LSNGapError", err)
	}
	err = s.ApplyAt(1, submitEvent(j2))
	if _, ok := err.(*LSNGapError); !ok {
		t.Fatalf("rewind err = %v, want *LSNGapError", err)
	}
	if err := s.ApplyAt(2, submitEvent(j2)); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().LSN; got != 2 {
		t.Fatalf("lsn %d want 2", got)
	}
}

func TestSnapshotShipAndRestore(t *testing.T) {
	leader, err := OpenStore(StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	streamEvents(t, leader, 1, 25)

	dir := t.TempDir()
	follower, err := OpenStore(StoreOptions{Dir: dir, SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Stale local history that the snapshot must void.
	streamEvents(t, follower, 500, 5)

	var buf bytes.Buffer
	lsn, err := leader.WriteSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := follower.RestoreSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != lsn {
		t.Fatalf("restore lsn %d want %d", got, lsn)
	}
	if lf, ls := follower.Engine().Fingerprint(), leader.Engine().Fingerprint(); lf != ls {
		t.Fatalf("fingerprint %x != %x after snapshot restore", lf, ls)
	}
	if m := follower.Metrics(); m.WALBytes != 0 || m.Segments != 0 {
		t.Fatalf("restore left stale WAL: %+v", m)
	}

	// The restore must survive a follower restart via its own checkpoint.
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	f2, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if lf, ls := f2.Engine().Fingerprint(), leader.Engine().Fingerprint(); lf != ls {
		t.Fatalf("fingerprint %x != %x after follower restart", lf, ls)
	}
	if f2.Metrics().LSN != lsn {
		t.Fatalf("restarted follower lsn %d want %d", f2.Metrics().LSN, lsn)
	}
}

func TestSeedBumpsGen(t *testing.T) {
	s, err := OpenStore(StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Gen() != 0 {
		t.Fatalf("fresh gen %d", s.Gen())
	}
	tr := &trace.Trace{Jobs: []trace.Job{mkJob(1, 1, "shared", 1000, 1000, 1100, 1200)}}
	if _, err := s.Seed(tr); err != nil {
		t.Fatal(err)
	}
	if s.Gen() != 1 {
		t.Fatalf("gen after seed = %d, want 1", s.Gen())
	}
}

func TestGenSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{Jobs: []trace.Job{mkJob(1, 1, "shared", 1000, 1000, 1100, 1200)}}
	if _, err := s.Seed(tr); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Gen() != 1 {
		t.Fatalf("gen after restart = %d, want 1", s2.Gen())
	}
}

func TestCorruptSealedSegmentRefusesRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(StoreOptions{Dir: dir, SyncEvery: -1, SegmentBytes: 256, RetainSegments: -1})
	if err != nil {
		t.Fatal(err)
	}
	streamEvents(t, s, 1, 20)
	if s.Metrics().Segments == 0 {
		t.Fatal("no sealed segments to corrupt")
	}
	s.Close()

	// Truncate a sealed segment mid-record: silent replay past the hole
	// would corrupt engine state, so the store must refuse to open.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if strings.HasPrefix(ent.Name(), segPrefix) {
			p := filepath.Join(dir, ent.Name())
			fi, _ := ent.Info()
			if err := os.Truncate(p, fi.Size()-3); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if _, err := OpenStore(StoreOptions{Dir: dir}); err == nil {
		t.Fatal("open succeeded over a corrupt sealed segment")
	}
}

// TestReadWALSkipsCorruptSealedSegment: serving tolerates what recovery
// refuses — a corrupt sealed segment is skipped so the leader stays up, and
// the follower heals through the re-snapshot path when it sees the gap.
func TestReadWALSkipsCorruptSealedSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(StoreOptions{Dir: dir, SyncEvery: -1, SegmentBytes: 256, RetainSegments: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	streamEvents(t, s, 1, 30)
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("need >= 2 segments, got %d (err %v)", len(segs), err)
	}
	if err := os.Truncate(segs[0].path, segs[0].bytes-3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	last, _, err := s.ReadWAL(0, 1<<30, &buf)
	if err != nil {
		t.Fatalf("serving should skip corruption, got %v", err)
	}
	if last != s.Metrics().LSN {
		t.Fatalf("read stopped at %d, want %d", last, s.Metrics().LSN)
	}
	// The shipped stream has a hole where the truncated record was — the
	// follower contiguity check must catch it.
	f, err := OpenStore(StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewWALScanner(bytes.NewReader(buf.Bytes()))
	sawGap := false
	for {
		lsn, ev, serr := sc.Next()
		if serr != nil {
			break
		}
		if aerr := f.ApplyAt(lsn, ev); aerr != nil {
			if _, ok := aerr.(*LSNGapError); ok {
				sawGap = true
				break
			}
			t.Fatalf("apply: %v", aerr)
		}
	}
	if !sawGap {
		t.Fatal("follower replayed a holed stream without detecting the gap")
	}
}

// FuzzReadSegment throws arbitrary bytes at the segment-frame scanner: it
// must terminate with an error or EOF — never panic, hang, or allocate
// unboundedly — because followers feed it bytes straight off the network.
func FuzzReadSegment(f *testing.F) {
	// Seed with a valid two-record stream and mangled variants.
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	for lsn, ev := range map[uint64]Event{
		1: submitEvent(mkJob(1, 1, "shared", 1000, 0, 0, 0)),
		2: {Type: EventEligible, Time: 1001, JobID: 1},
	} {
		if _, err := writeWALRecord(w, walRecord{LSN: lsn, Event: ev}); err != nil {
			f.Fatal(err)
		}
	}
	w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	f.Add(valid[1:])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		sc := NewWALScanner(bytes.NewReader(data))
		for {
			_, ev, err := sc.Next()
			if err != nil {
				return // torn/corrupt tail or clean EOF: both fine
			}
			// A CRC-valid frame must decode into something Validate can
			// classify without panicking.
			_ = ev.Validate()
		}
	})
}
