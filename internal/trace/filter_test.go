package trace

import "testing"

func TestFilterPartition(t *testing.T) {
	tr := &Trace{Jobs: []Job{
		{ID: 1, Partition: "a"}, {ID: 2, Partition: "b"}, {ID: 3, Partition: "a"},
	}}
	sub := tr.FilterPartition("a")
	if len(sub.Jobs) != 2 || sub.Jobs[0].ID != 1 || sub.Jobs[1].ID != 3 {
		t.Fatalf("FilterPartition = %+v", sub.Jobs)
	}
	if len(tr.FilterPartition("missing").Jobs) != 0 {
		t.Fatal("missing partition should be empty")
	}
	// Mutating the filtered copy must not touch the original.
	sub.Jobs[0].ID = 99
	if tr.Jobs[0].ID == 99 {
		t.Fatal("FilterPartition aliases the original")
	}
}

func TestWindow(t *testing.T) {
	tr := &Trace{Jobs: []Job{
		{ID: 1, Eligible: 10}, {ID: 2, Eligible: 20}, {ID: 3, Eligible: 30},
	}}
	w := tr.Window(15, 30)
	if len(w.Jobs) != 1 || w.Jobs[0].ID != 2 {
		t.Fatalf("Window = %+v", w.Jobs)
	}
	if len(tr.Window(100, 200).Jobs) != 0 {
		t.Fatal("empty window should be empty")
	}
}

func TestSpan(t *testing.T) {
	tr := &Trace{Jobs: []Job{
		{Submit: 50, End: 100}, {Submit: 10, End: 80}, {Submit: 30, End: 200},
	}}
	first, last := tr.Span()
	if first != 10 || last != 200 {
		t.Fatalf("Span = %d, %d", first, last)
	}
	empty := &Trace{}
	if f, l := empty.Span(); f != 0 || l != 0 {
		t.Fatal("empty span should be zero")
	}
}
