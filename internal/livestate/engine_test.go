package livestate

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/trace"
)

func submitEvent(j trace.Job) Event {
	sub := j
	sub.Eligible, sub.Start, sub.End = 0, 0, 0
	sub.State = ""
	return Event{Type: EventSubmit, Time: j.Submit, Job: &sub}
}

func TestEngineLifecycle(t *testing.T) {
	e := NewEngine()
	j := mkJob(1, 7, "shared", 100, 0, 0, 0)
	if err := e.ApplyEvent(submitEvent(j)); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Submitted != 1 || st.Pending != 0 {
		t.Fatalf("after submit: %+v", st)
	}
	if err := e.ApplyEvent(Event{Type: EventEligible, Time: 110, JobID: 1}); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Pending != 1 || st.Partitions["shared"].Pending != 1 {
		t.Fatalf("after eligible: %+v", st)
	}
	if err := e.ApplyEvent(Event{Type: EventStart, Time: 150, JobID: 1}); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Running != 1 || st.Pending != 0 {
		t.Fatalf("after start: %+v", st)
	}
	if want := int64(150 + 3600); st.NextExpectedEnd != want {
		t.Fatalf("next expected end %d, want %d", st.NextExpectedEnd, want)
	}
	if err := e.ApplyEvent(Event{Type: EventEnd, Time: 500, JobID: 1, State: trace.StateFailed}); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Running != 0 || st.Pending != 0 || st.NextExpectedEnd != 0 {
		t.Fatalf("after end: %+v", st)
	}
	if st.Now != 500 {
		t.Fatalf("now %d", st.Now)
	}
}

func TestEngineRejectsBadOrdering(t *testing.T) {
	e := NewEngine()
	j := mkJob(1, 7, "shared", 100, 0, 0, 0)
	if err := e.ApplyEvent(Event{Type: EventStart, Time: 100, JobID: 99}); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("start for unknown job: %v", err)
	}
	if err := e.ApplyEvent(submitEvent(j)); err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyEvent(submitEvent(j)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate submit: %v", err)
	}
	if err := e.ApplyEvent(Event{Type: EventEligible, Time: 110, JobID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyEvent(Event{Type: EventEligible, Time: 111, JobID: 1}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate eligible: %v", err)
	}
	if err := e.ApplyEvent(Event{Type: EventCancel, Time: 120, JobID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyEvent(Event{Type: EventStart, Time: 130, JobID: 1}); !errors.Is(err, ErrStale) {
		t.Fatalf("start after cancel: %v", err)
	}
	if st := e.Stats(); st.ApplyErrors != 4 || st.Pending != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestEngineStartWithoutEligible checks the lenient path: a stream that
// skipped the eligible event still gets a sane pending->running life.
func TestEngineStartWithoutEligible(t *testing.T) {
	e := NewEngine()
	if err := e.ApplyEvent(submitEvent(mkJob(5, 2, "gpu", 100, 0, 0, 0))); err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyEvent(Event{Type: EventStart, Time: 140, JobID: 5}); err != nil {
		t.Fatal(err)
	}
	snap := e.SnapshotAt(mkJob(9, 2, "gpu", 0, 0, 0, 0), 150)
	if len(snap.Running) != 1 || snap.Running[0].Eligible != 140 {
		t.Fatalf("running = %+v", snap.Running)
	}
}

func TestSnapshotForJob(t *testing.T) {
	e := NewEngine()
	for i := 1; i <= 3; i++ {
		j := mkJob(i, 7, "shared", 100, 0, 0, 0)
		if err := e.ApplyEvent(submitEvent(j)); err != nil {
			t.Fatal(err)
		}
		if err := e.ApplyEvent(Event{Type: EventEligible, Time: int64(100 + i), JobID: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.ApplyEvent(Event{Type: EventStart, Time: 200, JobID: 1}); err != nil {
		t.Fatal(err)
	}
	snap, err := e.SnapshotForJob(2)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Target.ID != 2 || snap.Now != 200 {
		t.Fatalf("snapshot target %d now %d", snap.Target.ID, snap.Now)
	}
	if len(snap.Pending) != 2 || len(snap.Running) != 1 {
		t.Fatalf("pending %d running %d", len(snap.Pending), len(snap.Running))
	}
	// History holds the target user's submissions strictly before Now.
	if len(snap.History) != 3 {
		t.Fatalf("history %d", len(snap.History))
	}
	if _, err := e.SnapshotForJob(1); err == nil {
		t.Fatal("running job should not be live-snapshottable")
	}
	if _, err := e.SnapshotForJob(42); err == nil {
		t.Fatal("unknown job should error")
	}
}

func TestEnginePrunesAgedHistory(t *testing.T) {
	e := NewEngine()
	base := int64(1_000_000)
	// Completed job far in the past...
	for i, ev := range []Event{
		submitEvent(mkJob(1, 7, "shared", base, 0, 0, 0)),
		{Type: EventEligible, Time: base, JobID: 1},
		{Type: EventStart, Time: base + 10, JobID: 1},
		{Type: EventEnd, Time: base + 20, JobID: 1},
	} {
		if err := e.ApplyEvent(ev); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	// ...and an ancient job still pending (must survive pruning).
	if err := e.ApplyEvent(submitEvent(mkJob(2, 7, "shared", base+30, 0, 0, 0))); err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyEvent(Event{Type: EventEligible, Time: base + 31, JobID: 2}); err != nil {
		t.Fatal(err)
	}
	// Advance the clock two days via a fresh submission.
	far := base + 2*86400
	if err := e.ApplyEvent(submitEvent(mkJob(3, 8, "shared", far, 0, 0, 0))); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.HistoryEntries != 1 {
		t.Fatalf("history entries %d, want 1 (aged submissions pruned)", st.HistoryEntries)
	}
	if st.Tracked != 2 {
		t.Fatalf("tracked %d, want 2 (done job pruned, old pending job kept)", st.Tracked)
	}
	if st.Pending != 1 {
		t.Fatalf("pending %d", st.Pending)
	}
	snap := e.SnapshotAt(mkJob(9, 7, "shared", 0, 0, 0, 0), far)
	if len(snap.History) != 0 {
		t.Fatalf("user 7 history should have aged out, got %d rows", len(snap.History))
	}
}

func TestSeedFromTraceClassification(t *testing.T) {
	base := int64(1_000_000)
	tr := &trace.Trace{Jobs: []trace.Job{
		mkJob(1, 7, "shared", base, base+10, 0, 0),                                    // pending (open start)
		mkJob(2, 7, "shared", base, base+10, base+20, 0),                              // running (open end)
		mkJob(3, 7, "shared", base, base+5, base+6, base+100),                         // done, recent -> history
		mkJob(4, 8, "gpu", base-3*86400, base-3*86400, base-3*86400, base-3*86400+60), // done, ancient -> dropped
		mkJob(5, 8, "gpu", base, 0, 0, 0),                                             // submitted only
	}}
	e := NewEngine()
	rep := e.SeedFromTrace(tr)
	if rep.Active != 3 || rep.History != 1 || rep.Dropped != 1 {
		t.Fatalf("seed report %+v", rep)
	}
	if rep.Now != base+100 {
		t.Fatalf("seed now %d", rep.Now)
	}
	st := e.Stats()
	if st.Pending != 1 || st.Running != 1 || st.Submitted != 1 {
		t.Fatalf("stats %+v", st)
	}
	snap := e.SnapshotAt(mkJob(9, 7, "shared", 0, 0, 0, 0), rep.Now)
	if len(snap.Pending) != 1 || snap.Pending[0].ID != 1 {
		t.Fatalf("pending %+v", snap.Pending)
	}
	if len(snap.Running) != 1 || snap.Running[0].ID != 2 {
		t.Fatalf("running %+v", snap.Running)
	}
	if len(snap.History) != 3 { // user 7: jobs 1, 2, 3 submitted within the day
		t.Fatalf("history %+v", snap.History)
	}
}

func TestSnapshotEmissionSortedByID(t *testing.T) {
	e := NewEngine()
	// Insert in shuffled ID order.
	for _, id := range []int{5, 1, 9, 3, 7} {
		j := mkJob(id, 7, "shared", 100+int64(id), 0, 0, 0)
		if err := e.ApplyEvent(submitEvent(j)); err != nil {
			t.Fatal(err)
		}
		if err := e.ApplyEvent(Event{Type: EventEligible, Time: 200 - int64(id), JobID: id}); err != nil {
			t.Fatal(err)
		}
	}
	snap := e.SnapshotAt(mkJob(99, 7, "shared", 0, 0, 0, 0), 500)
	for i := 1; i < len(snap.Pending); i++ {
		if snap.Pending[i].ID <= snap.Pending[i-1].ID {
			t.Fatalf("pending not ID-sorted: %v", snap.Pending)
		}
	}
	for i := 1; i < len(snap.History); i++ {
		if snap.History[i].ID <= snap.History[i-1].ID {
			t.Fatalf("history not ID-sorted: %v", snap.History)
		}
	}
}

func TestEndHeapIndexedRemoval(t *testing.T) {
	var h endHeap
	h.push(1, 300)
	h.push(2, 100)
	h.push(3, 200)
	if id, end, ok := h.peek(); !ok || id != 2 || end != 100 {
		t.Fatalf("peek %d %d %v", id, end, ok)
	}
	if !h.remove(2) {
		t.Fatal("remove 2")
	}
	if id, end, _ := h.peek(); id != 3 || end != 200 {
		t.Fatalf("peek after remove %d %d", id, end)
	}
	if h.remove(2) {
		t.Fatal("double remove should report false")
	}
	h.push(3, 50) // re-push updates the key
	if id, end, _ := h.peek(); id != 3 || end != 50 {
		t.Fatalf("peek after update %d %d", id, end)
	}
}

// TestEngineConcurrentApplyAndSnapshot exercises the locking under -race.
func TestEngineConcurrentApplyAndSnapshot(t *testing.T) {
	e := NewEngine()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 300; i++ {
			j := mkJob(i, i%5, "shared", int64(1000+i), 0, 0, 0)
			_ = e.ApplyEvent(submitEvent(j))
			_ = e.ApplyEvent(Event{Type: EventEligible, Time: int64(1001 + i), JobID: i})
			if i%3 == 0 {
				_ = e.ApplyEvent(Event{Type: EventStart, Time: int64(1002 + i), JobID: i})
			}
			if i%9 == 0 {
				_ = e.ApplyEvent(Event{Type: EventEnd, Time: int64(1003 + i), JobID: i})
			}
		}
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				snap := e.SnapshotAt(mkJob(9999, w, "shared", 0, 0, 0, 0), int64(1000+i))
				_ = snap
				_ = e.Stats()
			}
		}(w)
	}
	wg.Wait()
	if st := e.Stats(); st.Tracked == 0 {
		t.Fatal("nothing tracked")
	}
}

func TestStatsEventsCounting(t *testing.T) {
	e := NewEngine()
	j := mkJob(1, 7, "shared", 100, 0, 0, 0)
	_ = e.ApplyEvent(submitEvent(j))
	_ = e.ApplyEvent(Event{Type: EventEligible, Time: 110, JobID: 1})
	_ = e.ApplyEvent(Event{Type: EventEligible, Time: 111, JobID: 1}) // rejected
	st := e.Stats()
	if st.Events["submit"] != 1 || st.Events["eligible"] != 1 || st.ApplyErrors != 1 {
		t.Fatalf("events %v errs %d", st.Events, st.ApplyErrors)
	}
}

func TestDTORoundtrip(t *testing.T) {
	e := NewEngine()
	for i := 1; i <= 40; i++ {
		j := mkJob(i, i%4, fmt.Sprintf("p%d", i%3), int64(1000+i), 0, 0, 0)
		if err := e.ApplyEvent(submitEvent(j)); err != nil {
			t.Fatal(err)
		}
		if err := e.ApplyEvent(Event{Type: EventEligible, Time: int64(1100 + i), JobID: i}); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := e.ApplyEvent(Event{Type: EventStart, Time: int64(1200 + i), JobID: i}); err != nil {
				t.Fatal(err)
			}
		}
		if i%8 == 0 {
			if err := e.ApplyEvent(Event{Type: EventEnd, Time: int64(1300 + i), JobID: i}); err != nil {
				t.Fatal(err)
			}
		}
	}
	e2 := NewEngine()
	e2.restoreDTO(e.snapshotDTO())
	assertEnginesEqual(t, e, e2)
}

// TestDTORoundtripStaleStream is the crash-recovery fidelity regression: a
// stream whose timestamps trail the engine clock (replaying an old event
// file into an engine seeded at a later instant) must checkpoint/restore
// to identical state. Restore used to recompute ring membership by cutoff
// while live applies added every submission, so HistoryEntries diverged
// after a restart.
func TestDTORoundtripStaleStream(t *testing.T) {
	e := NewEngine()
	const now = int64(10_000_000)
	// Pin the clock with a fresh submission at now.
	if err := e.ApplyEvent(submitEvent(mkJob(1, 1, "shared", now, 0, 0, 0))); err != nil {
		t.Fatal(err)
	}
	// Stale but in-window: belongs in the history ring.
	if err := e.ApplyEvent(submitEvent(mkJob(2, 2, "shared", now-1000, 0, 0, 0))); err != nil {
		t.Fatal(err)
	}
	// Stale and already outside the retention window: tracked, but kept out
	// of the ring — no served 24 h window can ever include it.
	if err := e.ApplyEvent(submitEvent(mkJob(3, 3, "shared", now-historyRetention-50, 0, 0, 0))); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Tracked != 3 {
		t.Fatalf("tracked %d, want 3", st.Tracked)
	}
	if st.HistoryEntries != 2 {
		t.Fatalf("history entries %d, want 2 (expired submission must stay out of the ring)",
			st.HistoryEntries)
	}
	e2 := NewEngine()
	e2.restoreDTO(e.snapshotDTO())
	assertEnginesEqual(t, e, e2)
}

// TestStaleTerminalJobDropped: a job whose submission already aged out of
// the retention window has no ring entry, so pruning can never delete it;
// its terminal event must drop it directly instead of leaking it.
func TestStaleTerminalJobDropped(t *testing.T) {
	e := NewEngine()
	const now = int64(10_000_000)
	if err := e.ApplyEvent(submitEvent(mkJob(1, 1, "shared", now, 0, 0, 0))); err != nil {
		t.Fatal(err)
	}
	old := now - historyRetention - 100
	if err := e.ApplyEvent(submitEvent(mkJob(9, 2, "shared", old, 0, 0, 0))); err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyEvent(Event{Type: EventEligible, Time: old + 10, JobID: 9}); err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyEvent(Event{Type: EventStart, Time: old + 20, JobID: 9}); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Tracked != 2 || st.Running != 1 {
		t.Fatalf("while active: %+v", st)
	}
	if err := e.ApplyEvent(Event{Type: EventEnd, Time: old + 30, JobID: 9}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Tracked != 1 || st.Running != 0 {
		t.Fatalf("stale terminal job leaked: %+v", st)
	}
	e2 := NewEngine()
	e2.restoreDTO(e.snapshotDTO())
	assertEnginesEqual(t, e, e2)
}

// assertEnginesEqual compares two engines through their public surface:
// stats and snapshots for every tracked user/partition.
func assertEnginesEqual(t *testing.T, a, b *Engine) {
	t.Helper()
	sa, sb := a.Stats(), b.Stats()
	if sa.Now != sb.Now || sa.Tracked != sb.Tracked || sa.Pending != sb.Pending ||
		sa.Running != sb.Running || sa.Submitted != sb.Submitted ||
		sa.HistoryEntries != sb.HistoryEntries || sa.NextExpectedEnd != sb.NextExpectedEnd {
		t.Fatalf("stats diverge:\n%+v\n%+v", sa, sb)
	}
	for u := 0; u < 8; u++ {
		target := mkJob(999999, u, "p0", 0, 0, 0, 0)
		snapA := a.SnapshotAt(target, sa.Now)
		snapB := b.SnapshotAt(target, sb.Now)
		if len(snapA.Pending) != len(snapB.Pending) || len(snapA.Running) != len(snapB.Running) ||
			len(snapA.History) != len(snapB.History) {
			t.Fatalf("user %d snapshot sizes diverge", u)
		}
		for i := range snapA.Pending {
			if snapA.Pending[i] != snapB.Pending[i] {
				t.Fatalf("pending[%d] diverges: %+v vs %+v", i, snapA.Pending[i], snapB.Pending[i])
			}
		}
		for i := range snapA.Running {
			if snapA.Running[i] != snapB.Running[i] {
				t.Fatalf("running[%d] diverges", i)
			}
		}
		for i := range snapA.History {
			if snapA.History[i] != snapB.History[i] {
				t.Fatalf("history[%d] diverges", i)
			}
		}
	}
}
