package slurmsim

import "testing"

func TestDependencyDelaysEligibility(t *testing.T) {
	// Job 2 depends on job 1; cluster is empty, so job 2's queue time is
	// zero but its eligibility is job 1's completion.
	specs := []JobSpec{
		job(1, 0, 1000, 800, 1),
		{ID: 2, User: 1, Partition: "shared", Submit: 10, ReqCPUs: 1, ReqMemGB: 1,
			ReqNodes: 1, TimeLimit: 500, Runtime: 100, DependsOn: 1},
	}
	tr, _, err := Run(tinyConfig(), specs)
	if err != nil {
		t.Fatal(err)
	}
	j2 := findJob(tr, 2)
	if j2.Eligible != 800 {
		t.Fatalf("dependent eligible at %d, want 800 (dep end)", j2.Eligible)
	}
	if j2.Start != 800 {
		t.Fatalf("dependent started at %d", j2.Start)
	}
	if j2.QueueSeconds() != 0 {
		t.Fatal("waiting on a dependency must not count as queue time")
	}
	if j2.DependsOn != 1 {
		t.Fatal("dependency not recorded in the trace")
	}
}

func TestDependencyChain(t *testing.T) {
	specs := []JobSpec{
		job(1, 0, 300, 100, 1),
		{ID: 2, User: 1, Partition: "shared", Submit: 0, ReqCPUs: 1, ReqMemGB: 1,
			ReqNodes: 1, TimeLimit: 300, Runtime: 100, DependsOn: 1},
		{ID: 3, User: 1, Partition: "shared", Submit: 0, ReqCPUs: 1, ReqMemGB: 1,
			ReqNodes: 1, TimeLimit: 300, Runtime: 100, DependsOn: 2},
	}
	tr, st, err := Run(tinyConfig(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 3 {
		t.Fatalf("completed %d", st.Completed)
	}
	if findJob(tr, 2).Start != 100 || findJob(tr, 3).Start != 200 {
		t.Fatalf("chain starts %d, %d; want 100, 200",
			findJob(tr, 2).Start, findJob(tr, 3).Start)
	}
}

func TestDependencyOnLaterJobErrors(t *testing.T) {
	specs := []JobSpec{
		{ID: 1, User: 1, Partition: "shared", Submit: 0, ReqCPUs: 1, ReqMemGB: 1,
			ReqNodes: 1, TimeLimit: 100, Runtime: 50, DependsOn: 2},
		job(2, 0, 100, 50, 1),
	}
	if _, _, err := Run(tinyConfig(), specs); err == nil {
		t.Fatal("forward dependency accepted")
	}
}

func TestDependentOfRejectedJobIsRejected(t *testing.T) {
	specs := []JobSpec{
		{ID: 1, User: 1, Partition: "shared", Submit: 0, ReqCPUs: 99, ReqMemGB: 1,
			ReqNodes: 1, TimeLimit: 100, Runtime: 50}, // infeasible
		{ID: 2, User: 1, Partition: "shared", Submit: 0, ReqCPUs: 1, ReqMemGB: 1,
			ReqNodes: 1, TimeLimit: 100, Runtime: 50, DependsOn: 1},
	}
	_, st, err := Run(tinyConfig(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected != 2 || st.Completed != 0 {
		t.Fatalf("rejected=%d completed=%d, want 2/0", st.Rejected, st.Completed)
	}
}

func TestDependencyRespectsOwnSubmitDelay(t *testing.T) {
	// Dependency finishes at t=100, but the dependent also has an
	// eligibility delay pushing it to t=500.
	specs := []JobSpec{
		job(1, 0, 300, 100, 1),
		{ID: 2, User: 1, Partition: "shared", Submit: 0, EligibleDelay: 500,
			ReqCPUs: 1, ReqMemGB: 1, ReqNodes: 1, TimeLimit: 300, Runtime: 100, DependsOn: 1},
	}
	tr, _, err := Run(tinyConfig(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if findJob(tr, 2).Eligible != 500 {
		t.Fatalf("eligible %d, want 500 (max of dep end and begin time)", findJob(tr, 2).Eligible)
	}
}
