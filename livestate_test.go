// Tests for the live-state engine's contract with the legacy trace-scan
// path: event-replayed snapshots must reproduce the scan's feature vectors
// bit-for-bit, and the scan itself must honor open intervals (pending jobs
// with no start, running jobs with no end).
package trout_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"

	trout "repro"
	"repro/internal/features"
	"repro/internal/livestate"
	"repro/internal/trace"
)

// TestLiveStateEquivalence replays the shared experiment's trace as an
// event stream and checks that at sampled instants the engine's indexed
// snapshot produces feature vectors byte-identical to the legacy whole-
// trace scan. Float sums are order-dependent, so the trace copy is sorted
// by job ID — the order accounting dumps arrive in, and the order the
// engine emits.
func TestLiveStateEquivalence(t *testing.T) {
	e := sharedExperiment(t)
	jobs := append([]trace.Job(nil), e.Trace.Jobs...)
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	tr := &trout.Trace{Jobs: jobs}

	evs := livestate.EventsFromTrace(tr)
	if len(evs) < len(jobs)*2 {
		t.Fatalf("only %d events from %d jobs", len(evs), len(jobs))
	}
	eng := livestate.NewEngine()

	users := map[int]bool{}
	parts := map[string]bool{}
	for i := range jobs {
		users[jobs[i].User] = true
		parts[jobs[i].Partition] = true
	}
	userList := make([]int, 0, len(users))
	for u := range users {
		userList = append(userList, u)
	}
	sort.Ints(userList)
	partList := make([]string, 0, len(parts))
	for p := range parts {
		partList = append(partList, p)
	}
	sort.Strings(partList)

	checked := 0
	for i := range evs {
		if err := eng.ApplyEvent(evs[i]); err != nil {
			t.Fatalf("event %d (%+v): %v", i, evs[i], err)
		}
		// Only compare at time boundaries (every event at this instant
		// applied), sampled so the O(N) scan side stays affordable.
		if i+1 < len(evs) && evs[i+1].Time == evs[i].Time {
			continue
		}
		if i%211 != 0 {
			continue
		}
		at := evs[i].Time
		target := trace.Job{
			ID: 9_000_000 + i, User: userList[checked%len(userList)],
			Partition: partList[checked%len(partList)],
			Submit:    at, Eligible: at,
			ReqCPUs: 8, ReqMemGB: 16, ReqNodes: 1, TimeLimit: 7200, Priority: 3000,
		}
		liveRow, err := features.SnapshotRow(eng.SnapshotAt(target, at), e.Cluster, e.Data.Runtime)
		if err != nil {
			t.Fatalf("live row at %d: %v", at, err)
		}
		scanRow, err := features.SnapshotRow(trout.SnapshotAtInstant(tr, at, target), e.Cluster, e.Data.Runtime)
		if err != nil {
			t.Fatalf("scan row at %d: %v", at, err)
		}
		for k := range scanRow {
			if liveRow[k] != scanRow[k] {
				t.Fatalf("instant %d feature %s: live %v != scan %v",
					at, trout.FeatureNames[k], liveRow[k], scanRow[k])
			}
		}
		checked++
	}
	if checked < 30 {
		t.Fatalf("only %d instants compared", checked)
	}
	t.Logf("compared %d instants bit-for-bit", checked)
}

// TestSnapshotAtInstantOpenIntervals is the regression test for the
// closed-interval bug: jobs with Start == 0 (still queued) or End == 0
// (still running) used to vanish from snapshots, silently emptying the
// queue-pressure features on live traces.
func TestSnapshotAtInstantOpenIntervals(t *testing.T) {
	mk := func(id int, submit, eligible, start, end int64) trace.Job {
		return trace.Job{
			ID: id, User: 1, Partition: "shared", Submit: submit,
			Eligible: eligible, Start: start, End: end,
			ReqCPUs: 4, ReqMemGB: 8, ReqNodes: 1, TimeLimit: 3600, Priority: 1000,
		}
	}
	tr := &trout.Trace{Jobs: []trace.Job{
		mk(1, 100, 110, 0, 0),     // pending forever: no start
		mk(2, 100, 110, 120, 0),   // running forever: no end
		mk(3, 100, 110, 120, 130), // completed
	}}
	target := mk(99, 500, 500, 0, 0)
	snap := trout.SnapshotAtInstant(tr, 500, target)
	if len(snap.Pending) != 1 || snap.Pending[0].ID != 1 {
		t.Fatalf("open-interval pending dropped: %+v", snap.Pending)
	}
	if len(snap.Running) != 1 || snap.Running[0].ID != 2 {
		t.Fatalf("open-interval running dropped: %+v", snap.Running)
	}

	// Same bug existed in the by-ID path; job 99 in-trace sees 1 and 2.
	tr2 := &trout.Trace{Jobs: append(tr.Jobs, target)}
	snap2, err := trout.SnapshotFromTrace(tr2, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap2.Pending) != 1 || len(snap2.Running) != 1 {
		t.Fatalf("SnapshotFromTrace drops open intervals: pending %d running %d",
			len(snap2.Pending), len(snap2.Running))
	}
}

// TestServiceEventsEndpoint streams lifecycle events into a running
// service and checks the live engine answers the subsequent prediction
// (snapshot_source "live"), while historical jobs still fall back to the
// legacy scan.
func TestServiceEventsEndpoint(t *testing.T) {
	srv, e := testService(t)
	now := e.Trace.Jobs[len(e.Trace.Jobs)-1].End + 100
	var buf bytes.Buffer
	fmt.Fprintf(&buf, `{"type":"submit","time":%d,"job":{"id":9000001,"user":3,"partition":"shared","submit":%d,"req_cpus":8,"req_mem_gb":16,"req_nodes":1,"time_limit":7200,"priority":3000}}`+"\n", now, now)
	fmt.Fprintf(&buf, `{"type":"eligible","time":%d,"job_id":9000001}`+"\n", now+5)
	buf.WriteString("not an event\n") // within the bad-line budget
	resp, err := http.Post(srv.URL+"/events", "application/jsonl", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("events status %d: %s", resp.StatusCode, body)
	}
	var er struct {
		Applied  int `json:"applied"`
		BadLines int `json:"bad_lines"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Applied != 2 || er.BadLines != 1 {
		t.Fatalf("events response %+v", er)
	}

	var p struct {
		Source string `json:"snapshot_source"`
	}
	if code := getJSON(t, srv.URL+"/predict?job=9000001", &p); code != 200 {
		t.Fatalf("predict status %d", code)
	}
	if p.Source != "live" {
		t.Fatalf("tracked pending job answered by %q, want live", p.Source)
	}

	// A completed mid-trace job is not pending in the engine: scan answers.
	histID := e.Trace.Jobs[len(e.Trace.Jobs)/2].ID
	if code := getJSON(t, fmt.Sprintf("%s/predict?job=%d", srv.URL, histID), &p); code != 200 {
		t.Fatalf("historical predict status %d", code)
	}
	if p.Source != "scan" {
		t.Fatalf("historical job answered by %q, want scan", p.Source)
	}
}

// TestServiceMetricsEndpoint checks the Prometheus exposition renders and
// carries the livestate and fallback series.
func TestServiceMetricsEndpoint(t *testing.T) {
	srv, _ := testService(t)
	// Generate at least one observed request first.
	if code := getJSON(t, srv.URL+"/health", &struct{}{}); code != 200 {
		t.Fatalf("health %d", code)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE trout_predictions_total counter",
		"# TYPE trout_http_request_duration_seconds histogram",
		"trout_http_requests_total{path=\"/health\",code=\"200\"}",
		"trout_livestate_events_total{type=\"seed\"}",
		"trout_livestate_apply_errors_total",
		"trout_queue_pending",
		"trout_wal_lag_records",
		"trout_checkpoints_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
}
