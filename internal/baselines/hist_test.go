package baselines

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
	"repro/internal/slurmsim"
	"repro/internal/workload"
)

// TestBinnedRoundtrip: every raw value must land left of a split exactly
// when its bin does, i.e. bin(v) <= b  <=>  v <= edges[b]. This is the
// invariant that lets histogram-trained trees keep float thresholds.
func TestBinnedRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X := make([][]float64, 3000)
	for i := range X {
		// Mix of continuous, heavy-tailed, and low-cardinality columns.
		X[i] = []float64{
			rng.NormFloat64(),
			math.Exp(rng.NormFloat64() * 3),
			float64(rng.Intn(4)),
		}
	}
	bm := newBinned(X, 0)
	for f := 0; f < bm.cols; f++ {
		edges := bm.edges[f]
		for b := 1; b < len(edges); b++ {
			if edges[b] <= edges[b-1] {
				t.Fatalf("feature %d: edges not strictly increasing at %d", f, b)
			}
		}
		if len(edges)+1 > maxBins {
			t.Fatalf("feature %d: %d bins exceeds cap", f, len(edges)+1)
		}
		col := bm.col(f)
		for i, row := range X {
			v, bin := row[f], int(col[i])
			for b := range edges {
				if (bin <= b) != (v <= edges[b]) {
					t.Fatalf("feature %d row %d: v=%v bin=%d disagrees with edge[%d]=%v",
						f, i, v, bin, b, edges[b])
				}
			}
		}
	}
}

// TestHistogramSubtractionConsistent: a parent histogram minus a scanned
// child must equal the sibling's directly scanned histogram.
func TestHistogramSubtractionConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := synthData(rng, 500, 5, linearFn, 0.3)
	sc := newHistScratch(newBinned(X, 0), y, 1)
	all := make([]int, len(X))
	for i := range all {
		all[i] = i
	}
	parent := sc.acquire()
	sc.accumulate(parent, all)
	left, right := all[:170], all[170:]
	lh := sc.acquire()
	sc.accumulate(lh, left)
	sc.subtractInto(parent, lh) // parent becomes right's histogram
	want := sc.acquire()
	sc.accumulate(want, right)
	for i := range want.count {
		if parent.count[i] != want.count[i] {
			t.Fatalf("count[%d]: subtraction %d vs direct %d", i, parent.count[i], want.count[i])
		}
		if math.Abs(parent.sum[i]-want.sum[i]) > 1e-9 {
			t.Fatalf("sum[%d]: subtraction %v vs direct %v", i, parent.sum[i], want.sum[i])
		}
	}
}

// workloadMatrix synthesizes an Anvil-shaped job stream and exposes it as a
// plain regression problem: request-time features against log runtime (the
// same shape as the runtime predictor the pipeline trains on every refit).
func workloadMatrix(t testing.TB, n int) ([][]float64, []float64) {
	t.Helper()
	cluster := slurmsim.AnvilLike(1)
	specs, err := workload.Generate(workload.DefaultConfig(n, 77), &cluster)
	if err != nil {
		t.Fatal(err)
	}
	parts := map[string]int{}
	for i, p := range cluster.Partitions {
		parts[p.Name] = i
	}
	X := make([][]float64, len(specs))
	y := make([]float64, len(specs))
	for i, s := range specs {
		interactive := 0.0
		if s.Interactive {
			interactive = 1
		}
		X[i] = []float64{
			float64(s.ReqCPUs),
			s.ReqMemGB,
			float64(s.ReqNodes),
			float64(s.ReqGPUs),
			float64(s.TimeLimit),
			float64(s.QOS),
			interactive,
			float64(parts[s.Partition]),
			float64(s.User % 97),
			float64(s.Submit % 86400),
		}
		y[i] = math.Log1p(float64(s.Runtime))
	}
	return X, y
}

// TestHistogramMatchesExactQuality is the tentpole equivalence test: on the
// workload generator's job stream, histogram-mode GBDT and forest must land
// within 5% test MAE of exact mode (the acceptance tolerance).
func TestHistogramMatchesExactQuality(t *testing.T) {
	X, y := workloadMatrix(t, 6000)
	cut := len(X) * 4 / 5
	trainX, trainY := X[:cut], y[:cut]
	testX, testY := X[cut:], y[cut:]

	check := func(name string, hist, exact Regressor) {
		t.Helper()
		if err := hist.Fit(trainX, trainY); err != nil {
			t.Fatal(err)
		}
		if err := exact.Fit(trainX, trainY); err != nil {
			t.Fatal(err)
		}
		maeH := metrics.MAE(PredictAll(hist, testX), testY)
		maeE := metrics.MAE(PredictAll(exact, testX), testY)
		if maeH > maeE*1.05 {
			t.Errorf("%s: histogram MAE %.4f vs exact %.4f (> 5%% worse)", name, maeH, maeE)
		}
		t.Logf("%s: histogram MAE %.4f, exact MAE %.4f", name, maeH, maeE)
	}

	check("gbdt",
		NewGBDT(GBDTConfig{Rounds: 60, Seed: 3}),
		NewGBDT(GBDTConfig{Rounds: 60, Seed: 3, Tree: TreeConfig{Exact: true}}))
	check("forest",
		NewForest(ForestConfig{Trees: 30, Seed: 4}),
		NewForest(ForestConfig{Trees: 30, Seed: 4, Tree: TreeConfig{Exact: true}}))
}

// TestHistogramLearnsStep mirrors the exact-mode smoke tests on the
// histogram path explicitly (the default path is histogram, but this pins
// it even if the default ever flips).
func TestHistogramLearnsStep(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := synthData(rng, 500, 3, stepFn, 0.1)
	tr := NewTree(TreeConfig{MaxDepth: 3, MinLeaf: 5, Exact: false})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{1, 0, 0}); math.Abs(got-10) > 1 {
		t.Fatalf("Predict(+) = %v", got)
	}
	if got := tr.Predict([]float64{-1, 0, 0}); math.Abs(got+10) > 1 {
		t.Fatalf("Predict(-) = %v", got)
	}
}

// TestGBDTWorkerInvariance: feature-parallel split search must not change
// the trained model — same seeds, different worker counts, identical
// predictions.
func TestGBDTWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	X, y := synthData(rng, 2500, 8, linearFn, 0.4)
	fit := func(workers int) []float64 {
		g := NewGBDT(GBDTConfig{Rounds: 10, Seed: 7,
			Tree: TreeConfig{MaxFeatures: 4, Workers: workers}})
		if err := g.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		return PredictAll(g, X[:50])
	}
	a, b := fit(1), fit(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prediction %d differs across worker counts: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestHistogramSerializationRoundtrip: histogram-trained ensembles must
// survive the gob roundtrip bit-for-bit (thresholds are plain floats).
func TestHistogramSerializationRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	X, y := synthData(rng, 800, 6, linearFn, 0.3)
	g := NewGBDT(GBDTConfig{Rounds: 15, Seed: 9})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	blob, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back GBDT
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if a, b := g.Predict(X[i]), back.Predict(X[i]); a != b {
			t.Fatalf("row %d: %v != %v after roundtrip", i, a, b)
		}
	}
}
