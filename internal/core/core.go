// Package core implements TROUT, the paper's contribution: a hierarchical
// queue-time predictor for Slurm jobs. A binary classifier first decides
// whether a job will start within the cutoff (10 minutes); jobs classified
// as "long" are passed to a regression network that predicts the wait in
// minutes (Fig 1 / Algorithm 1). The classifier trains on SMOTE-balanced
// classes; the regressor trains with smooth-L1 loss on the long-job subset
// with ELU activations; both use Adam. All features pass through the
// natural-log transform (configurable for the scaling ablation).
package core

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"time"

	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/scaling"
	"repro/internal/smote"
	"repro/internal/tensor"
)

// HeadConfig configures one of the two networks.
type HeadConfig struct {
	Hidden     []int
	Activation nn.ActivationKind
	Dropout    float64
	BatchNorm  bool // regressor ablation only; the paper rejected it
	LearnRate  float64
	Epochs     int
	BatchSize  int
}

// Config configures TROUT training.
type Config struct {
	// CutoffMinutes splits "quick-start" from "long" jobs; the paper
	// settles on 10 after evaluating 5 and 30.
	CutoffMinutes float64
	Classifier    HeadConfig
	Regressor     HeadConfig
	// Scaler is applied to all features (paper: natural log).
	Scaler scaling.Kind
	// UseSMOTE balances the classifier's classes (paper: on).
	UseSMOTE bool
	SMOTE    smote.Config
	// RegressorLoss is the regression training loss (paper: smooth L1).
	RegressorLoss nn.LossKind
	// Workers is passed to the trainers; 0 = auto.
	Workers int
	Seed    int64
}

// DefaultConfig mirrors the paper's published architecture: a two-hidden-
// layer classifier and a three-hidden-layer ELU regressor over 33 features.
func DefaultConfig() Config {
	return Config{
		CutoffMinutes: 10,
		Classifier: HeadConfig{
			Hidden: []int{64, 32}, Activation: nn.ReLU, Dropout: 0.2,
			LearnRate: 1e-3, Epochs: 20, BatchSize: 256,
		},
		Regressor: HeadConfig{
			Hidden: []int{128, 64, 32}, Activation: nn.ELU, Dropout: 0.1,
			LearnRate: 1e-3, Epochs: 40, BatchSize: 256,
		},
		Scaler:        scaling.Log1p,
		UseSMOTE:      true,
		SMOTE:         smote.Config{K: 5},
		RegressorLoss: nn.SmoothL1,
	}
}

// Model is a trained TROUT bundle.
type Model struct {
	Cfg        Config
	Scaler     scaling.Scaler
	Classifier *nn.Network
	Regressor  *nn.Network
	NumInputs  int
}

// Prediction is the output of Algorithm 1 for one job.
type Prediction struct {
	// Long is the classifier's verdict: true when the job is predicted to
	// queue for at least the cutoff.
	Long bool
	// Prob is the classifier's probability of the job being long.
	Prob float64
	// Minutes is the regressor's estimate; only meaningful when Long.
	Minutes float64
}

// Message renders the CLI string exactly as Algorithm 1 specifies.
func (p Prediction) Message(cutoff float64) string {
	if p.Long {
		return fmt.Sprintf("Predicted to start in %d minutes", int(math.Round(p.Minutes)))
	}
	return fmt.Sprintf("Predicted to take less than %d minutes", int(cutoff))
}

// Train fits the hierarchical model on the rows of ds selected by trainIdx.
// The scaler is fit on training rows only.
func Train(ds *features.Dataset, trainIdx []int, cfg Config) (*Model, error) {
	return TrainCtx(context.Background(), ds, trainIdx, cfg)
}

// TrainHooks observes training progress across both heads. The head
// argument is "classifier" or "regressor". Hooks live outside Config on
// purpose: Config is gob-encoded into saved model bundles, and function
// fields would break that wire format.
type TrainHooks struct {
	// OnEpoch fires after every completed epoch of either head.
	OnEpoch func(head string, stats nn.EpochStats)
	// OnRollback fires after every divergence rollback.
	OnRollback func(head string, epoch, events int, lr float64)
}

// TrainCtx is Train with cooperative cancellation: both heads' fits stop
// between batches once ctx is cancelled. A diverging fit (non-finite losses
// past the trainer's patience) surfaces as an *nn.DivergenceError instead
// of silently producing a NaN model.
func TrainCtx(ctx context.Context, ds *features.Dataset, trainIdx []int, cfg Config) (*Model, error) {
	return TrainCtxHooked(ctx, ds, trainIdx, cfg, TrainHooks{})
}

// TrainCtxHooked is TrainCtx with per-epoch and rollback telemetry hooks.
func TrainCtxHooked(ctx context.Context, ds *features.Dataset, trainIdx []int, cfg Config, hooks TrainHooks) (*Model, error) {
	if len(trainIdx) < 10 {
		return nil, fmt.Errorf("core: only %d training samples", len(trainIdx))
	}
	if cfg.CutoffMinutes <= 0 {
		return nil, fmt.Errorf("core: non-positive cutoff %v", cfg.CutoffMinutes)
	}
	scaler, err := scaling.New(cfg.Scaler)
	if err != nil {
		return nil, err
	}
	rawTrain := make([][]float64, len(trainIdx))
	for k, i := range trainIdx {
		rawTrain[k] = ds.X[i]
	}
	scaler.Fit(rawTrain)
	X := scaling.TransformAll(scaler, rawTrain)
	dim := len(X[0])

	m := &Model{Cfg: cfg, Scaler: scaler, NumInputs: dim}

	// --- Classifier: long vs quick-start, on balanced classes. ---
	labels := make([]bool, len(trainIdx))
	for k, i := range trainIdx {
		labels[k] = ds.QueueMinutes[i] >= cfg.CutoffMinutes
	}
	cx, cy := X, labels
	if cfg.UseSMOTE {
		sc := cfg.SMOTE
		sc.Seed = cfg.Seed + 101
		cx, cy, err = smote.Balance(sc, X, labels)
		if err != nil {
			// Single-class training slices (e.g. tiny folds) fall back
			// to the unbalanced data.
			cx, cy = X, labels
		}
	}
	m.Classifier, err = trainClassifier(ctx, cx, cy, dim, cfg, hooks)
	if err != nil {
		return nil, err
	}

	// --- Regressor: log-minutes on the truly-long subset. ---
	var rx [][]float64
	var ry []float64
	for k, i := range trainIdx {
		if ds.QueueMinutes[i] >= cfg.CutoffMinutes {
			rx = append(rx, X[k])
			ry = append(ry, math.Log1p(ds.QueueMinutes[i]))
		}
	}
	if len(rx) < 10 {
		return nil, fmt.Errorf("core: only %d long jobs to train the regressor", len(rx))
	}
	m.Regressor, err = trainRegressor(ctx, rx, ry, dim, cfg, hooks)
	if err != nil {
		return nil, err
	}
	return m, nil
}

func toMatrices(X [][]float64, y []float64) (*tensor.Matrix, *tensor.Matrix) {
	xm := tensor.FromRows(X)
	ym := tensor.New(len(y), 1)
	for i, v := range y {
		ym.Set(i, 0, v)
	}
	return xm, ym
}

// hookCfg wires TrainHooks into one head's nn.TrainConfig.
func hookCfg(tc *nn.TrainConfig, head string, hooks TrainHooks) {
	if hooks.OnEpoch != nil {
		tc.OnEpochStats = func(stats nn.EpochStats) { hooks.OnEpoch(head, stats) }
	}
	if hooks.OnRollback != nil {
		tc.OnRollback = func(epoch, events int, lr float64) {
			hooks.OnRollback(head, epoch, events, lr)
		}
	}
}

func trainClassifier(ctx context.Context, X [][]float64, labels []bool, dim int, cfg Config, hooks TrainHooks) (*nn.Network, error) {
	h := cfg.Classifier
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	net := nn.NewNetwork(rng, nn.MLPSpecs(dim, h.Hidden, 1, h.Activation, nn.Sigmoid, h.Dropout)...)
	y := make([]float64, len(labels))
	for i, l := range labels {
		if l {
			y[i] = 1
		}
	}
	xm, ym := toMatrices(X, y)
	tr := nn.Trainer{
		Net: net,
		Opt: nn.NewAdam(h.LearnRate),
		Cfg: nn.TrainConfig{
			Loss: nn.BCE, Epochs: h.Epochs, BatchSize: h.BatchSize,
			Workers: cfg.Workers, Seed: cfg.Seed + 2,
		},
	}
	hookCfg(&tr.Cfg, "classifier", hooks)
	if _, err := tr.FitCtx(ctx, xm, ym); err != nil {
		return nil, fmt.Errorf("core: classifier training: %w", err)
	}
	return net, nil
}

func trainRegressor(ctx context.Context, X [][]float64, y []float64, dim int, cfg Config, hooks TrainHooks) (*nn.Network, error) {
	h := cfg.Regressor
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	var specs []nn.LayerSpec
	prev := dim
	for _, hid := range h.Hidden {
		specs = append(specs, nn.DenseSpec(prev, hid))
		if h.BatchNorm {
			specs = append(specs, nn.BatchNormSpec(hid))
		}
		specs = append(specs, nn.ActivationSpec(h.Activation))
		if h.Dropout > 0 {
			specs = append(specs, nn.DropoutSpec(h.Dropout))
		}
		prev = hid
	}
	specs = append(specs, nn.DenseSpec(prev, 1))
	net := nn.NewNetwork(rng, specs...)
	xm, ym := toMatrices(X, y)
	loss := cfg.RegressorLoss
	if loss == "" {
		loss = nn.SmoothL1
	}
	tr := nn.Trainer{
		Net: net,
		Opt: nn.NewAdam(h.LearnRate),
		Cfg: nn.TrainConfig{
			Loss: loss, Epochs: h.Epochs, BatchSize: h.BatchSize,
			Workers: cfg.Workers, Seed: cfg.Seed + 4,
		},
	}
	hookCfg(&tr.Cfg, "regressor", hooks)
	if _, err := tr.FitCtx(ctx, xm, ym); err != nil {
		return nil, fmt.Errorf("core: regressor training: %w", err)
	}
	return net, nil
}

// Predict runs Algorithm 1 on one raw (unscaled) feature row. The scaled
// row lives in a pooled matrix (TransformInto is bit-identical to
// Transform), so the warm path performs zero heap allocations.
func (m *Model) Predict(raw []float64) Prediction {
	xm := tensor.Get(1, m.NumInputs)
	defer tensor.Put(xm)
	scaling.TransformInto(m.Scaler, xm.Data, raw)
	x := xm.Data
	prob := m.Classifier.Predict1(x)
	p := Prediction{Prob: prob, Long: prob >= 0.5}
	if p.Long {
		p.Minutes = math.Expm1(m.Regressor.Predict1(x))
		if p.Minutes < m.Cfg.CutoffMinutes {
			// The hierarchical contract: the regressor only speaks for
			// jobs past the cutoff.
			p.Minutes = m.Cfg.CutoffMinutes
		}
	}
	return p
}

// EnableFastInference compiles both heads onto the float32 inference path
// (transposed lane-padded weights, SSE kernels, f64-accumulating output
// head — see internal/nn/infer32.go). Training data and the f64 training
// path are untouched; predictions move within the documented f32
// tolerance. Returns false and leaves the f64 path active on both heads
// if either architecture cannot be compiled.
func (m *Model) EnableFastInference() bool {
	if !m.Classifier.EnableFloat32() || !m.Regressor.EnableFloat32() {
		m.Classifier.DisableFloat32()
		m.Regressor.DisableFloat32()
		return false
	}
	return true
}

// DisableFastInference reverts both heads to the float64 path.
func (m *Model) DisableFastInference() {
	m.Classifier.DisableFloat32()
	m.Regressor.DisableFloat32()
}

// FastInferenceEnabled reports whether both heads serve from the float32
// path.
func (m *Model) FastInferenceEnabled() bool {
	return m.Classifier.Float32Enabled() && m.Regressor.Float32Enabled()
}

// PredictSpans is Predict with per-stage span timing (scale, classify,
// regress) recorded into sp. A nil sp falls through to the untimed path,
// so serving code can call this unconditionally.
func (m *Model) PredictSpans(raw []float64, sp *obs.Spans) Prediction {
	if sp == nil {
		return m.Predict(raw)
	}
	t0 := time.Now()
	xm := tensor.Get(1, m.NumInputs)
	defer tensor.Put(xm)
	scaling.TransformInto(m.Scaler, xm.Data, raw)
	x := xm.Data
	sp.Observe(obs.StageScale, time.Since(t0).Seconds())

	t0 = time.Now()
	prob := m.Classifier.Predict1(x)
	sp.Observe(obs.StageClassify, time.Since(t0).Seconds())

	p := Prediction{Prob: prob, Long: prob >= 0.5}
	if p.Long {
		t0 = time.Now()
		p.Minutes = math.Expm1(m.Regressor.Predict1(x))
		sp.Observe(obs.StageRegress, time.Since(t0).Seconds())
		if p.Minutes < m.Cfg.CutoffMinutes {
			// The hierarchical contract: the regressor only speaks for
			// jobs past the cutoff.
			p.Minutes = m.Cfg.CutoffMinutes
		}
	}
	return p
}

// batchChunk bounds the rows one worker processes per PredictBatch chunk:
// small enough to spread a 64-job batch across ≥4 cores, large enough that
// the mini-batch matmuls amortize their loop overhead.
const batchChunk = 16

// PredictBatch runs Algorithm 1 on many raw feature rows as true mini-batch
// matmuls: rows are scaled into a pooled matrix, the classifier runs once
// per chunk, and the regressor runs once over the long-classified subset —
// instead of len(rows) row-by-row passes. Chunks are spread across
// GOMAXPROCS goroutines, each with its own pooled workspace. Results are
// bit-identical to calling Predict on each row: the kernels, accumulation
// order and clamping match exactly.
func (m *Model) PredictBatch(raw [][]float64) []Prediction {
	preds := make([]Prediction, len(raw))
	if len(raw) == 0 {
		return preds
	}
	chunks := (len(raw) + batchChunk - 1) / batchChunk
	workers := runtime.GOMAXPROCS(0)
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		m.predictChunk(raw, preds)
		return preds
	}
	var wg sync.WaitGroup
	next := int64(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(atomic.AddInt64(&next, 1))
				if c >= chunks {
					return
				}
				lo := c * batchChunk
				hi := lo + batchChunk
				if hi > len(raw) {
					hi = len(raw)
				}
				m.predictChunk(raw[lo:hi], preds[lo:hi])
			}
		}()
	}
	wg.Wait()
	return preds
}

// predictChunk fills preds for one contiguous slice of rows using pooled
// buffers and workspaces; zero steady-state heap allocations per row.
func (m *Model) predictChunk(raw [][]float64, preds []Prediction) {
	n := len(raw)
	x := tensor.Get(n, m.NumInputs)
	defer tensor.Put(x)
	for i, r := range raw {
		scaling.TransformInto(m.Scaler, x.Row(i), r)
	}

	cws := m.Classifier.AcquireWorkspace()
	probs := m.Classifier.PredictInto(cws, x)
	longIdx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		p := probs.At(i, 0)
		preds[i] = Prediction{Prob: p, Long: p >= 0.5}
		if preds[i].Long {
			longIdx = append(longIdx, i)
		}
	}
	m.Classifier.ReleaseWorkspace(cws)

	if len(longIdx) == 0 {
		return
	}
	rx := tensor.Get(len(longIdx), m.NumInputs)
	defer tensor.Put(rx)
	for k, i := range longIdx {
		copy(rx.Row(k), x.Row(i))
	}
	rws := m.Regressor.AcquireWorkspace()
	mins := m.Regressor.PredictInto(rws, rx)
	for k, i := range longIdx {
		v := math.Expm1(mins.At(k, 0))
		if v < m.Cfg.CutoffMinutes {
			// The hierarchical contract: the regressor only speaks for
			// jobs past the cutoff.
			v = m.Cfg.CutoffMinutes
		}
		preds[i].Minutes = v
	}
	m.Regressor.ReleaseWorkspace(rws)
}

// RegressMinutes applies only the regression head (used when the true label
// is known, e.g. fold evaluation on the truly-long subset).
func (m *Model) RegressMinutes(raw []float64) float64 {
	xm := tensor.Get(1, m.NumInputs)
	defer tensor.Put(xm)
	scaling.TransformInto(m.Scaler, xm.Data, raw)
	v := math.Expm1(m.Regressor.Predict1(xm.Data))
	if v < 0 {
		v = 0
	}
	return v
}

// ClassifyProb returns the classifier probability for one raw row.
func (m *Model) ClassifyProb(raw []float64) float64 {
	xm := tensor.Get(1, m.NumInputs)
	defer tensor.Put(xm)
	scaling.TransformInto(m.Scaler, xm.Data, raw)
	return m.Classifier.Predict1(xm.Data)
}

// modelDTO is the gob wire format of a trained bundle.
type modelDTO struct {
	Cfg        Config
	Scaler     scaling.State
	Classifier []byte
	Regressor  []byte
	NumInputs  int
}

// Save writes the trained bundle.
func (m *Model) Save(w io.Writer) error {
	cb, err := m.Classifier.Bytes()
	if err != nil {
		return err
	}
	rb, err := m.Regressor.Bytes()
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(modelDTO{
		Cfg: m.Cfg, Scaler: scaling.StateOf(m.Scaler),
		Classifier: cb, Regressor: rb, NumInputs: m.NumInputs,
	})
}

// Load reads a bundle written by Save.
func Load(r io.Reader) (*Model, error) {
	var dto modelDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	scaler, err := scaling.FromState(dto.Scaler)
	if err != nil {
		return nil, err
	}
	cls, err := nn.FromBytes(dto.Classifier)
	if err != nil {
		return nil, err
	}
	reg, err := nn.FromBytes(dto.Regressor)
	if err != nil {
		return nil, err
	}
	return &Model{Cfg: dto.Cfg, Scaler: scaler, Classifier: cls, Regressor: reg, NumInputs: dto.NumInputs}, nil
}

// SaveFile and LoadFile are path conveniences for the CLI tools.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a bundle from disk.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
