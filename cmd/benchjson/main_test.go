package main

import (
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	res, ok := parseBench("BenchmarkPredictBatch64-8   \t 100\t 194669 ns/op\t 3962 B/op\t 3 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if res.Name != "PredictBatch64" || res.Procs != 8 || res.Iterations != 100 {
		t.Fatalf("header fields: %+v", res)
	}
	if res.NsPerOp != 194669 || res.Metrics["B/op"] != 3962 || res.Metrics["allocs/op"] != 3 {
		t.Fatalf("measurements: %+v", res)
	}
}

func TestParseBenchSubNameAndCustomMetric(t *testing.T) {
	res, ok := parseBench("BenchmarkHyperoptSearch/workers=1-4 5 2000 ns/op 1.25 mape-%")
	if !ok {
		t.Fatal("line rejected")
	}
	if res.Name != "HyperoptSearch/workers=1" || res.Procs != 4 {
		t.Fatalf("name/procs: %+v", res)
	}
	if res.Metrics["mape-%"] != 1.25 {
		t.Fatalf("custom metric: %+v", res)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkShort 10",
		"BenchmarkBadIters x ns/op",
		"BenchmarkBadValue 10 abc ns/op",
	} {
		if _, ok := parseBench(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestParseDocument(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R)
BenchmarkPredictSingle 	10	10508 ns/op	316 B/op	1 allocs/op
BenchmarkForwardAllocs 	10	83439 ns/op	0 B/op	0 allocs/op
PASS
ok  	repro	0.341s
`
	var doc document
	doc.Context = map[string]string{}
	parse(strings.NewReader(input), &doc)
	if len(doc.Benchmarks) != 2 || doc.Failed {
		t.Fatalf("doc: %+v", doc)
	}
	if doc.Context["goos"] != "linux" || doc.Context["cpu"] != "Intel(R) Xeon(R)" {
		t.Fatalf("context: %+v", doc.Context)
	}
	if doc.Benchmarks[0].Procs != 1 {
		t.Fatalf("no -N suffix should mean procs=1: %+v", doc.Benchmarks[0])
	}
}

func TestCompareBenchmarks(t *testing.T) {
	base := []result{
		{Name: "Stable", Iterations: 1, NsPerOp: 1e6},
		{Name: "Regressed", Iterations: 1, NsPerOp: 1e6},
		{Name: "Noisy", Iterations: 1, NsPerOp: 5e4}, // 50µs single shot: below the 1e5 sample floor
		{Name: "Removed", Iterations: 1, NsPerOp: 1e6},
		// Fast op, long sample: 1µs over 10k iterations = 10ms of signal.
		// The old absolute-ns/op floor would have skipped this forever.
		{Name: "FastGated", Iterations: 10_000, NsPerOp: 1e3},
		// Fresh side may also be the noisy one: solid baseline, 1-shot rerun.
		{Name: "FreshNoisy", Iterations: 10_000, NsPerOp: 1e3},
		// Repeated -count entries collapse to the minimum.
		{Name: "Stable", Iterations: 1, NsPerOp: 2e6},
	}
	fresh := []result{
		{Name: "Stable", Iterations: 1, NsPerOp: 1.5e6},    // 1.5x: within 2x tolerance
		{Name: "Regressed", Iterations: 1, NsPerOp: 2.5e6}, // 2.5x: fails the gate
		{Name: "Noisy", Iterations: 1, NsPerOp: 9e5},       // 18x but skipped (short baseline sample)
		{Name: "Brand-new", Iterations: 1, NsPerOp: 1e6},   // no baseline: reported, not failed
		{Name: "FastGated", Iterations: 200, NsPerOp: 3e3}, // 3x on a 600µs sample: fails the gate
		{Name: "FreshNoisy", Iterations: 1, NsPerOp: 9e4},  // 90x but the fresh sample is 90µs: skipped
	}
	rep := compareBenchmarks(base, fresh, 2.0, 1e5)
	if len(rep.regressions) != 2 || rep.regressions[0] != "FastGated" || rep.regressions[1] != "Regressed" {
		t.Fatalf("regressions = %v, want [FastGated Regressed]", rep.regressions)
	}
	joined := strings.Join(rep.lines, "\n")
	for _, want := range []string{"ok    Stable", "FAIL  Regressed", "skip  Noisy", "new   Brand-new",
		"gone  Removed", "FAIL  FastGated", "skip  FreshNoisy"} {
		if !strings.Contains(joined, want) {
			t.Errorf("report missing %q:\n%s", want, joined)
		}
	}
}

func TestSampleNs(t *testing.T) {
	if got := sampleNs(result{Iterations: 100, NsPerOp: 1e3}); got != 1e5 {
		t.Fatalf("sampleNs = %v, want 1e5", got)
	}
	// Legacy documents without the iterations field count as one shot.
	if got := sampleNs(result{NsPerOp: 7e4}); got != 7e4 {
		t.Fatalf("zero-iteration sampleNs = %v, want 7e4", got)
	}
}

func TestCompareBenchmarksAllClean(t *testing.T) {
	base := []result{{Name: "A", Iterations: 1, NsPerOp: 1e6}}
	fresh := []result{{Name: "A", Iterations: 1, NsPerOp: 0.8e6}} // got faster
	if rep := compareBenchmarks(base, fresh, 2.0, 1e5); len(rep.regressions) != 0 {
		t.Fatalf("unexpected regressions: %v", rep.regressions)
	}
}
