package metrics

import "math/rand"

// newRng keeps property tests terse.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
