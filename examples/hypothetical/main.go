// Hypothetical job queuing — the paper's §V future-work mode. A user
// describes a job they have NOT submitted; TROUT reconstructs the live
// queue state and predicts the wait, letting them tune the request before
// submission. This example trains a bundle, picks a congested moment in the
// trace, and sweeps the hypothetical job's time limit to show how the
// prediction responds.
package main

import (
	"fmt"
	"log"

	trout "repro"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)

	p := trout.DefaultPipeline(10000, 7)
	p.Model.Classifier.Epochs = 10
	p.Model.Regressor.Epochs = 20
	fmt.Println("building training trace and model...")
	tr, cluster, err := p.GenerateTrace()
	if err != nil {
		log.Fatal(err)
	}
	ds, err := p.BuildDataset(tr, cluster)
	if err != nil {
		log.Fatal(err)
	}
	m, _, err := trout.TrainHoldout(ds, p.Model, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	bundle, err := trout.NewBundle(m, ds, cluster)
	if err != nil {
		log.Fatal(err)
	}

	// Find the most congested instant in the trace: the eligibility time
	// of the job that waited longest.
	var worst *trout.Job
	for i := range tr.Jobs {
		if worst == nil || tr.Jobs[i].QueueSeconds() > worst.QueueSeconds() {
			worst = &tr.Jobs[i]
		}
	}
	at := worst.Eligible
	fmt.Printf("\nqueue state at t=%d (when job %d began a %.0f-minute wait):\n",
		at, worst.ID, worst.QueueMinutes())

	// Sweep the hypothetical job's requested wall time.
	fmt.Println("hypothetical 16-CPU job in `shared`, sweeping requested time limit:")
	for _, limitMin := range []int64{30, 120, 480, 1440, 2880} {
		snap := snapshotAt(tr, at, trace.Job{
			ID: -1, User: worst.User, Partition: "shared",
			Submit: at, Eligible: at,
			ReqCPUs: 16, ReqMemGB: 32, ReqNodes: 1,
			TimeLimit: limitMin * 60, Priority: worst.Priority,
		})
		pred, err := bundle.PredictSnapshot(snap)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  limit %5d min -> P(long wait) %.3f  %s\n",
			limitMin, pred.Prob, pred.Message(m.Cfg.CutoffMinutes))
	}

	// And the partition dimension: same job, different partitions.
	fmt.Println("\nsame job, sweeping partition:")
	for _, part := range []string{"shared", "wholenode", "standby", "debug"} {
		spec := trace.Job{
			ID: -1, User: worst.User, Partition: part,
			Submit: at, Eligible: at,
			ReqCPUs: 16, ReqMemGB: 32, ReqNodes: 1,
			TimeLimit: 120 * 60, Priority: worst.Priority,
		}
		if part == "wholenode" {
			spec.ReqCPUs = 128
			spec.ReqMemGB = 256
		}
		snap := snapshotAt(tr, at, spec)
		pred, err := bundle.PredictSnapshot(snap)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s -> P(long wait) %.3f  %s\n", part, pred.Prob, pred.Message(m.Cfg.CutoffMinutes))
	}
}

// snapshotAt reconstructs queue state at an instant with the hypothetical
// job injected as target.
func snapshotAt(tr *trout.Trace, at int64, target trace.Job) *trout.Snapshot {
	snap := &trout.Snapshot{Now: at, Target: target}
	for i := range tr.Jobs {
		j := tr.Jobs[i]
		switch {
		case j.Eligible <= at && at < j.Start:
			snap.Pending = append(snap.Pending, j)
		case j.Start <= at && at < j.End:
			snap.Running = append(snap.Running, j)
		}
		if j.Submit >= at-86400 && j.Submit < at {
			snap.History = append(snap.History, j)
		}
	}
	return snap
}
